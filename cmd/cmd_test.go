// Package cmd_test runs the four CLI tools end to end as compiled
// binaries: generate a sampled workload, link it (with and without LSH),
// and grade the links against the truth file — the complete workflow a
// downstream user would script.
package cmd_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// build compiles one command into dir and returns the binary path.
func build(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "slim/cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func runCmd(t *testing.T, bin string, args ...string) (stdout, stderr string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var so, se strings.Builder
	cmd.Stdout = &so
	cmd.Stderr = &se
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstdout:\n%s\nstderr:\n%s", bin, args, err, so.String(), se.String())
	}
	return so.String(), se.String()
}

func TestCLIWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	genBin := build(t, dir, "slim-gen")
	linkBin := build(t, dir, "slim-link")
	evalBin := build(t, dir, "slim-eval")

	// 1. Generate a sampled workload.
	_, genErr := runCmd(t, genBin,
		"-kind", "cab", "-taxis", "24", "-days", "2", "-interval", "420",
		"-sample", "-ratio", "0.5", "-inclusion", "0.6", "-dir", dir, "-seed", "5")
	if !strings.Contains(genErr, "true pairs") {
		t.Fatalf("slim-gen summary missing: %s", genErr)
	}
	for _, f := range []string{"E.csv", "I.csv", "truth.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing output %s: %v", f, err)
		}
	}

	// 2. Link without LSH.
	links, linkErr := runCmd(t, linkBin,
		"-e", filepath.Join(dir, "E.csv"), "-i", filepath.Join(dir, "I.csv"))
	if !strings.HasPrefix(links, "u,v,score") {
		t.Fatalf("slim-link header missing:\n%s", links)
	}
	if !strings.Contains(linkErr, "stop threshold") {
		t.Fatalf("slim-link summary missing:\n%s", linkErr)
	}
	linksPath := filepath.Join(dir, "links.csv")
	if err := os.WriteFile(linksPath, []byte(links), 0o644); err != nil {
		t.Fatal(err)
	}

	// 3. Grade.
	evalOut, _ := runCmd(t, evalBin,
		"-links", linksPath, "-truth", filepath.Join(dir, "truth.csv"))
	if !strings.Contains(evalOut, "precision:") || !strings.Contains(evalOut, "f1:") {
		t.Fatalf("slim-eval output malformed:\n%s", evalOut)
	}
	// The clean synthetic workload should link with decent quality.
	if strings.Contains(evalOut, "f1:        0.0") {
		t.Errorf("suspiciously poor CLI linkage:\n%s", evalOut)
	}

	// 4. Link again with LSH; summary must include filter stats.
	_, lshErr := runCmd(t, linkBin,
		"-e", filepath.Join(dir, "E.csv"), "-i", filepath.Join(dir, "I.csv"),
		"-lsh", "-lsh-threshold", "0.2", "-lsh-level", "12", "-lsh-step", "48")
	if !strings.Contains(lshErr, "lsh: signature=") {
		t.Fatalf("slim-link LSH summary missing:\n%s", lshErr)
	}
}

func TestCLIGenGroundDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	genBin := build(t, dir, "slim-gen")
	out := filepath.Join(dir, "sm.csv")
	_, genErr := runCmd(t, genBin, "-kind", "sm", "-users", "50", "-days", "3", "-out", out)
	if !strings.Contains(genErr, "entities") {
		t.Fatalf("summary missing: %s", genErr)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "entity,lat,lng,unix") {
		t.Fatalf("csv header missing:\n%.100s", data)
	}
}

func TestCLIExperimentsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	expBin := build(t, dir, "slim-experiments")
	out, _ := runCmd(t, expBin, "-tiny", "fig2")
	if !strings.Contains(out, "score histogram") || !strings.Contains(out, "finished in") {
		t.Fatalf("fig2 output malformed:\n%s", out)
	}
	out, _ = runCmd(t, expBin, "-tiny", "tuning")
	if !strings.Contains(out, "chosen level") {
		t.Fatalf("tuning output malformed:\n%s", out)
	}
}

// startSlimd launches the service binary and waits for it to log its
// bound address, returning the process and the base URL.
func startSlimd(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })

	// The service logs its bound address once it is serving: a structured
	// line with msg=listening and the addr attribute (the debug server's
	// line has a different, quoted msg and never matches).
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if !strings.Contains(line, "msg=listening ") {
				continue
			}
			if i := strings.Index(line, "addr="); i >= 0 {
				rest := line[i+len("addr="):]
				if j := strings.Index(rest, " "); j > 0 {
					rest = rest[:j]
				}
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("slimd never reported its listen address")
		return nil, ""
	}
}

// TestCLISlimd boots the linkage service seeded with a generated
// workload, exercises its HTTP API from the outside, and shuts it down
// gracefully — the full service lifecycle as a deployment would see it.
func TestCLISlimd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	genBin := build(t, dir, "slim-gen")
	slimdBin := build(t, dir, "slimd")

	_, genErr := runCmd(t, genBin,
		"-kind", "cab", "-taxis", "20", "-days", "2", "-interval", "420",
		"-sample", "-ratio", "0.5", "-inclusion", "0.6", "-dir", dir, "-seed", "11")
	if !strings.Contains(genErr, "true pairs") {
		t.Fatalf("slim-gen summary missing: %s", genErr)
	}

	cmd, base := startSlimd(t, slimdBin,
		"-addr", "127.0.0.1:0", "-shards", "2", "-debounce", "100ms",
		"-e", filepath.Join(dir, "E.csv"), "-i", filepath.Join(dir, "I.csv"))

	get := func(path string, v any) int {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if v != nil {
			if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	if code := get("/healthz", nil); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	// The seed datasets are linked at boot.
	var links struct {
		Total int `json:"total"`
	}
	if code := get("/v1/links", &links); code != 200 || links.Total == 0 {
		t.Fatalf("GET /v1/links = %d, total %d; want seeded links", code, links.Total)
	}
	var stats struct {
		Shards int    `json:"shards"`
		Runs   uint64 `json:"runs"`
	}
	if code := get("/v1/stats", &stats); code != 200 || stats.Shards != 2 || stats.Runs == 0 {
		t.Fatalf("GET /v1/stats = %d, %+v", code, stats)
	}

	// Freshness tracing end to end: ingest one batch over HTTP, force a
	// relink, and require the ingest-to-visible histogram to have counted
	// it and the staleness gauge to be back at ~0 (pipeline quiesced).
	getMetrics := func() string {
		t.Helper()
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		if _, err := io.Copy(&sb, resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET /metrics = %d", resp.StatusCode)
		}
		return sb.String()
	}
	metric := func(body, sample string) float64 {
		t.Helper()
		for _, line := range strings.Split(body, "\n") {
			if rest, found := strings.CutPrefix(line, sample+" "); found {
				v, err := strconv.ParseFloat(rest, 64)
				if err != nil {
					t.Fatalf("bad value for %s: %q", sample, rest)
				}
				return v
			}
		}
		t.Fatalf("metric %s absent from /metrics", sample)
		return 0
	}
	before := metric(getMetrics(), "slim_ingest_to_visible_seconds_count")
	body := strings.NewReader(`{"records":[{"entity":"fresh-1","lat":40.7,"lng":-74.0,"unix":1700000000}]}`)
	if resp, err := http.Post(base+"/v1/datasets/e/records", "application/json", body); err != nil || resp.StatusCode != 202 {
		t.Fatalf("ingest: %v (status %d)", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Post(base+"/v1/link", "application/json", nil); err != nil || resp.StatusCode != 200 {
		t.Fatalf("relink: %v (status %d)", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	after := getMetrics()
	if count := metric(after, "slim_ingest_to_visible_seconds_count"); count <= before {
		t.Errorf("slim_ingest_to_visible_seconds_count = %v, want > %v after ingest+relink", count, before)
	}
	if stale := metric(after, "slim_link_staleness_seconds"); stale > 1 {
		t.Errorf("slim_link_staleness_seconds = %v after quiesce, want ~0", stale)
	}

	// Graceful shutdown on SIGTERM.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("slimd exited with error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("slimd did not shut down on SIGTERM")
	}
}

// TestCLISlimdChaos is the fault-injection e2e through the real binary:
// boot slimd with a deterministic -fault schedule (a WAL fsync failure
// and a relink panic), stream batches from the outside, and require the
// degraded-mode contract — a 503 + Retry-After naming the storage
// domain, self-healing, a contained panic visible in /metrics and
// /healthz — then kill -9 and prove the recovered linkage holds exactly
// the acked batches.
func TestCLISlimdChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	slimdBin := build(t, dir, "slimd")
	dataDir := filepath.Join(dir, "data")
	// Inline fsync so a nacked append never consumes a sequence number;
	// snapshots off so the WAL alone accounts for every batch. The sync
	// fault skips the boot checkpoint and lands on an early WAL append;
	// the relink panic fires on the first forced run (a fresh seedless
	// boot never runs on its own with a 1h debounce, so that run is ours).
	baseArgs := []string{"-addr", "127.0.0.1:0", "-shards", "2", "-debounce", "1h",
		"-threshold", "none", "-data-dir", dataDir, "-fsync-interval", "0",
		"-snapshot-every", "-1", "-snapshot-bytes", "-1"}
	chaosArgs := append(append([]string{}, baseArgs...),
		"-fault", "fs.sync:error:after=3:count=1,engine.relink:panic=chaos:count=1")

	cmd1, base1 := startSlimd(t, slimdBin, chaosArgs...)

	getJSON := func(base, path string, v any) int {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if v != nil {
			if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
				t.Fatalf("GET %s: decode: %v", path, err)
			}
		}
		return resp.StatusCode
	}
	type healthz struct {
		Status  string `json:"status"`
		Domains []struct {
			Domain string `json:"domain"`
			Status string `json:"status"`
		} `json:"domains"`
	}
	domainStatus := func(base, domain string) (overall, status string) {
		t.Helper()
		var hz healthz
		if code := getJSON(base, "/healthz", &hz); code != 200 {
			t.Fatalf("healthz = %d, want 200 even mid-fault", code)
		}
		for _, d := range hz.Domains {
			if d.Domain == domain {
				return hz.Status, d.Status
			}
		}
		return hz.Status, ""
	}

	mkBody := func(e string, off float64, startUnix int64) string {
		var sb strings.Builder
		sb.WriteString(`{"records":[`)
		for k := 0; k < 20; k++ {
			if k > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, `{"entity":%q,"lat":%g,"lng":-122.3,"unix":%d}`,
				e, 37.5+off+float64(k%4)*0.06, startUnix+int64(k)*900)
		}
		sb.WriteString("]}")
		return sb.String()
	}

	// Stream three entity pairs; the armed fsync fault rejects one batch
	// with the degraded contract, after which the node must heal and the
	// retry must land. Every acked append consumes exactly one sequence
	// number, so the final next_seq pins "rejected batches left no trace".
	rejections, ackedAppends := 0, 0
	for i, e := range []string{"a", "b", "c"} {
		off := float64(i) * 0.8
		for _, ds := range []struct{ path, entity string }{
			{"/v1/datasets/e/records", "e-" + e},
			{"/v1/datasets/i/records", "i-" + e},
		} {
			body := mkBody(ds.entity, off, 1_000_000)
			deadline := time.Now().Add(15 * time.Second)
			for {
				resp, err := http.Post(base1+ds.path, "application/json", strings.NewReader(body))
				if err != nil {
					t.Fatal(err)
				}
				status := resp.StatusCode
				retryAfter := resp.Header.Get("Retry-After")
				var errBody struct {
					Domain string `json:"domain"`
				}
				if status != 202 {
					json.NewDecoder(resp.Body).Decode(&errBody)
				}
				resp.Body.Close()
				if status == 202 {
					ackedAppends++
					break
				}
				if status != 503 {
					t.Fatalf("ingest %s: status %d, want 202 or degraded 503", ds.entity, status)
				}
				if retryAfter == "" || errBody.Domain != "storage" {
					t.Fatalf("degraded 503 contract violated: Retry-After=%q domain=%q",
						retryAfter, errBody.Domain)
				}
				rejections++
				// Liveness holds while degraded; then wait out the reopen.
				if overall, storageDom := domainStatus(base1, "storage"); overall == "degraded" && storageDom != "degraded" {
					t.Fatalf("healthz overall=%s but storage domain=%q", overall, storageDom)
				}
				for {
					if _, storageDom := domainStatus(base1, "storage"); storageDom == "healthy" {
						break
					}
					if time.Now().After(deadline) {
						t.Fatal("storage domain never healed after fault exhausted")
					}
					time.Sleep(20 * time.Millisecond)
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("ingest %s never acked", ds.entity)
			}
		}
	}
	if rejections == 0 {
		t.Fatal("armed fsync fault never landed — no batch was rejected")
	}
	if ackedAppends != 6 {
		t.Fatalf("acked appends = %d, want 6", ackedAppends)
	}

	post := func(base, path string) int {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	// The first forced run hits the armed relink panic. Containment means
	// it still answers 200 (republishing the previous — here empty —
	// result) and the process survives.
	if code := post(base1, "/v1/link"); code != 200 {
		t.Fatalf("panicked /v1/link = %d, want 200 (contained, previous result republished)", code)
	}
	if overall, relinkDom := domainStatus(base1, "relink"); overall != "degraded" || relinkDom != "degraded" {
		t.Fatalf("healthz after contained panic: overall=%s relink=%s, want degraded", overall, relinkDom)
	}
	metrics := func(base string) string {
		t.Helper()
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if body := metrics(base1); !strings.Contains(body, "slim_relink_panics_total 1") {
		t.Error("slim_relink_panics_total != 1 after contained panic")
	}
	// The next run recovers the relink domain and republishes fresh links.
	if code := post(base1, "/v1/link"); code != 200 {
		t.Fatalf("recovery /v1/link = %d", code)
	}
	if overall, relinkDom := domainStatus(base1, "relink"); overall != "ok" || relinkDom != "healthy" {
		t.Fatalf("healthz after recovery run: overall=%s relink=%s, want healthy", overall, relinkDom)
	}

	type linkJSON struct {
		U     string  `json:"u"`
		V     string  `json:"v"`
		Score float64 `json:"score"`
	}
	getLinks := func(base string) (links []linkJSON) {
		t.Helper()
		var out struct {
			Links []linkJSON `json:"links"`
		}
		if code := getJSON(base, "/v1/links", &out); code != 200 {
			t.Fatalf("GET /v1/links = %d", code)
		}
		return out.Links
	}
	before := getLinks(base1)
	if len(before) != 3 {
		t.Fatalf("post-chaos links = %+v, want 3 pairs", before)
	}

	// kill -9 mid-flight, then recover on the same directory with no
	// faults armed: the linkage must rebuild from exactly the acked WAL.
	if err := cmd1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd1.Wait()
	cmd2, base2 := startSlimd(t, slimdBin, baseArgs...)
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base2 + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered slimd never became ready")
		}
		time.Sleep(20 * time.Millisecond)
	}
	after := getLinks(base2)
	if len(after) != len(before) {
		t.Fatalf("recovered links = %+v, want %+v", after, before)
	}
	sort.Slice(before, func(i, j int) bool { return before[i].U < before[j].U })
	sort.Slice(after, func(i, j int) bool { return after[i].U < after[j].U })
	for i := range before {
		if before[i].U != after[i].U || before[i].V != after[i].V ||
			math.Abs(before[i].Score-after[i].Score) > 1e-9 {
			t.Fatalf("link %d drifted across chaos crash: %+v vs %+v", i, before[i], after[i])
		}
	}
	var stats struct {
		Storage *struct {
			NextSeq uint64 `json:"next_seq"`
		} `json:"storage"`
	}
	if code := getJSON(base2, "/v1/stats", &stats); code != 200 {
		t.Fatalf("GET /v1/stats = %d", code)
	}
	if stats.Storage == nil || stats.Storage.NextSeq != 7 {
		t.Fatalf("recovered storage stats = %+v, want next_seq 7 (rejected appends consume no seq)",
			stats.Storage)
	}

	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd2.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("recovered slimd exited with error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("recovered slimd did not shut down on SIGTERM")
	}
}

func TestCLIErrorPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	linkBin := build(t, dir, "slim-link")
	evalBin := build(t, dir, "slim-eval")

	// Missing required flags must exit non-zero.
	if err := exec.Command(linkBin).Run(); err == nil {
		t.Error("slim-link without flags should fail")
	}
	if err := exec.Command(evalBin).Run(); err == nil {
		t.Error("slim-eval without flags should fail")
	}
	// Nonexistent input file.
	if err := exec.Command(linkBin, "-e", "nope.csv", "-i", "nope2.csv").Run(); err == nil {
		t.Error("slim-link with missing files should fail")
	}
}

// TestCLISlimdCrashRecovery is the durability e2e: stream batches into a
// slimd with a data directory, kill -9 the process, restart it on the
// same directory, and require the recovered service to serve identical
// links (modulo relink version) without re-ingesting anything.
func TestCLISlimdCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	slimdBin := build(t, dir, "slimd")
	dataDir := filepath.Join(dir, "data")
	args := []string{"-addr", "127.0.0.1:0", "-shards", "2", "-debounce", "1h",
		"-threshold", "none", "-data-dir", dataDir, "-fsync-interval", "1ms"}

	cmd1, base1 := startSlimd(t, slimdBin, args...)

	type linkJSON struct {
		U     string  `json:"u"`
		V     string  `json:"v"`
		Score float64 `json:"score"`
	}
	getLinks := func(base string) (links []linkJSON) {
		t.Helper()
		resp, err := http.Get(base + "/v1/links")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Links []linkJSON `json:"links"`
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET /v1/links = %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Links
	}
	post := func(base, path string, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Stream three entity pairs in separate acknowledged batches.
	mkBody := func(e string, off float64, startUnix int64) string {
		var sb strings.Builder
		sb.WriteString(`{"records":[`)
		for k := 0; k < 20; k++ {
			if k > 0 {
				sb.WriteString(",")
			}
			fmt.Fprintf(&sb, `{"entity":%q,"lat":%g,"lng":-122.3,"unix":%d}`,
				e, 37.5+off+float64(k%4)*0.06, startUnix+int64(k)*900)
		}
		sb.WriteString("]}")
		return sb.String()
	}
	for i, e := range []string{"a", "b", "c"} {
		off := float64(i) * 0.8
		if resp := post(base1, "/v1/datasets/e/records", mkBody("e-"+e, off, 1_000_000)); resp.StatusCode != 202 {
			t.Fatalf("ingest e-%s = %d", e, resp.StatusCode)
		}
		if resp := post(base1, "/v1/datasets/i/records", mkBody("i-"+e, off, 1_000_030)); resp.StatusCode != 202 {
			t.Fatalf("ingest i-%s = %d", e, resp.StatusCode)
		}
	}
	if resp := post(base1, "/v1/link", ""); resp.StatusCode != 200 {
		t.Fatalf("POST /v1/link = %d", resp.StatusCode)
	}
	before := getLinks(base1)
	if len(before) != 3 {
		t.Fatalf("pre-crash links = %+v, want 3 pairs", before)
	}

	// kill -9: no graceful shutdown, no final checkpoint.
	if err := cmd1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd1.Wait()

	// Restart on the same directory: recovery must replay the WAL. The
	// seedless restart proves the links come from the data dir alone.
	cmd2, base2 := startSlimd(t, slimdBin, args...)
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base2 + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == 200 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted slimd never became ready")
		}
		time.Sleep(20 * time.Millisecond)
	}
	after := getLinks(base2)
	if len(after) != len(before) {
		t.Fatalf("recovered links = %+v, want %+v", after, before)
	}
	sortFn := func(ls []linkJSON) {
		sort.Slice(ls, func(i, j int) bool { return ls[i].U < ls[j].U })
	}
	sortFn(before)
	sortFn(after)
	for i := range before {
		if before[i].U != after[i].U || before[i].V != after[i].V ||
			math.Abs(before[i].Score-after[i].Score) > 1e-9 {
			t.Fatalf("link %d drifted across crash: %+v vs %+v", i, before[i], after[i])
		}
	}

	// Storage stats prove the persistence pipeline was exercised.
	resp, err := http.Get(base2 + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Storage *struct {
			NextSeq uint64 `json:"next_seq"`
		} `json:"storage"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Storage == nil || stats.Storage.NextSeq != 7 {
		t.Fatalf("recovered storage stats = %+v, want next_seq 7 (6 replayed batches)", stats.Storage)
	}

	// Graceful shutdown of the recovered process.
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd2.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("recovered slimd exited with error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("recovered slimd did not shut down on SIGTERM")
	}
}
