// Package cmd_test runs the four CLI tools end to end as compiled
// binaries: generate a sampled workload, link it (with and without LSH),
// and grade the links against the truth file — the complete workflow a
// downstream user would script.
package cmd_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// build compiles one command into dir and returns the binary path.
func build(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "slim/cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func runCmd(t *testing.T, bin string, args ...string) (stdout, stderr string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var so, se strings.Builder
	cmd.Stdout = &so
	cmd.Stderr = &se
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstdout:\n%s\nstderr:\n%s", bin, args, err, so.String(), se.String())
	}
	return so.String(), se.String()
}

func TestCLIWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	genBin := build(t, dir, "slim-gen")
	linkBin := build(t, dir, "slim-link")
	evalBin := build(t, dir, "slim-eval")

	// 1. Generate a sampled workload.
	_, genErr := runCmd(t, genBin,
		"-kind", "cab", "-taxis", "24", "-days", "2", "-interval", "420",
		"-sample", "-ratio", "0.5", "-inclusion", "0.6", "-dir", dir, "-seed", "5")
	if !strings.Contains(genErr, "true pairs") {
		t.Fatalf("slim-gen summary missing: %s", genErr)
	}
	for _, f := range []string{"E.csv", "I.csv", "truth.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing output %s: %v", f, err)
		}
	}

	// 2. Link without LSH.
	links, linkErr := runCmd(t, linkBin,
		"-e", filepath.Join(dir, "E.csv"), "-i", filepath.Join(dir, "I.csv"))
	if !strings.HasPrefix(links, "u,v,score") {
		t.Fatalf("slim-link header missing:\n%s", links)
	}
	if !strings.Contains(linkErr, "stop threshold") {
		t.Fatalf("slim-link summary missing:\n%s", linkErr)
	}
	linksPath := filepath.Join(dir, "links.csv")
	if err := os.WriteFile(linksPath, []byte(links), 0o644); err != nil {
		t.Fatal(err)
	}

	// 3. Grade.
	evalOut, _ := runCmd(t, evalBin,
		"-links", linksPath, "-truth", filepath.Join(dir, "truth.csv"))
	if !strings.Contains(evalOut, "precision:") || !strings.Contains(evalOut, "f1:") {
		t.Fatalf("slim-eval output malformed:\n%s", evalOut)
	}
	// The clean synthetic workload should link with decent quality.
	if strings.Contains(evalOut, "f1:        0.0") {
		t.Errorf("suspiciously poor CLI linkage:\n%s", evalOut)
	}

	// 4. Link again with LSH; summary must include filter stats.
	_, lshErr := runCmd(t, linkBin,
		"-e", filepath.Join(dir, "E.csv"), "-i", filepath.Join(dir, "I.csv"),
		"-lsh", "-lsh-threshold", "0.2", "-lsh-level", "12", "-lsh-step", "48")
	if !strings.Contains(lshErr, "lsh: signature=") {
		t.Fatalf("slim-link LSH summary missing:\n%s", lshErr)
	}
}

func TestCLIGenGroundDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	genBin := build(t, dir, "slim-gen")
	out := filepath.Join(dir, "sm.csv")
	_, genErr := runCmd(t, genBin, "-kind", "sm", "-users", "50", "-days", "3", "-out", out)
	if !strings.Contains(genErr, "entities") {
		t.Fatalf("summary missing: %s", genErr)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "entity,lat,lng,unix") {
		t.Fatalf("csv header missing:\n%.100s", data)
	}
}

func TestCLIExperimentsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	expBin := build(t, dir, "slim-experiments")
	out, _ := runCmd(t, expBin, "-tiny", "fig2")
	if !strings.Contains(out, "score histogram") || !strings.Contains(out, "finished in") {
		t.Fatalf("fig2 output malformed:\n%s", out)
	}
	out, _ = runCmd(t, expBin, "-tiny", "tuning")
	if !strings.Contains(out, "chosen level") {
		t.Fatalf("tuning output malformed:\n%s", out)
	}
}

func TestCLIErrorPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short")
	}
	dir := t.TempDir()
	linkBin := build(t, dir, "slim-link")
	evalBin := build(t, dir, "slim-eval")

	// Missing required flags must exit non-zero.
	if err := exec.Command(linkBin).Run(); err == nil {
		t.Error("slim-link without flags should fail")
	}
	if err := exec.Command(evalBin).Run(); err == nil {
		t.Error("slim-eval without flags should fail")
	}
	// Nonexistent input file.
	if err := exec.Command(linkBin, "-e", "nope.csv", "-i", "nope2.csv").Run(); err == nil {
		t.Error("slim-link with missing files should fail")
	}
}
