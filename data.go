package slim

import (
	"io"

	"slim/internal/datagen"
	"slim/internal/eval"
	"slim/internal/geo"
	"slim/internal/model"
)

// Re-exported core types: the public API speaks these, the internal
// packages implement them.
type (
	// EntityID identifies an entity within one dataset.
	EntityID = model.EntityID
	// Record is one spatio-temporal usage record {entity, location, time}.
	Record = model.Record
	// Dataset is a collection of records from one location-based service.
	Dataset = model.Dataset
	// LatLng is a geographic position in degrees.
	LatLng = geo.LatLng
)

// NewRecord builds a record, clamping the position into valid ranges.
func NewRecord(entity EntityID, lat, lng float64, unix int64) Record {
	return Record{Entity: entity, LatLng: geo.LatLngFromDegrees(lat, lng), Unix: unix}
}

// ReadDatasetCSV parses a dataset from CSV (entity,lat,lng,unix; header
// optional).
func ReadDatasetCSV(r io.Reader, name string) (Dataset, error) {
	return model.ReadCSV(r, name)
}

// WriteDatasetCSV writes the dataset in the canonical CSV layout.
func WriteDatasetCSV(w io.Writer, d *Dataset) error {
	return model.WriteCSV(w, d)
}

// Synthetic workload generation (see DESIGN.md §3 for how these stand in
// for the paper's proprietary traces).
type (
	// CabOptions parameterizes the synthetic San Francisco taxi trace.
	CabOptions = datagen.CabConfig
	// SMOptions parameterizes the synthetic social-media check-in stream.
	SMOptions = datagen.SMConfig
	// SampleOptions controls drawing two overlapping linkage inputs from a
	// ground dataset (entity intersection ratio, record inclusion
	// probability — Sec. 5.1 of the paper).
	SampleOptions = datagen.SampleConfig
	// SampledWorkload is a pair of anonymized datasets plus ground truth.
	SampledWorkload = datagen.Sampled
)

// GenerateCab builds the synthetic taxi trace.
func GenerateCab(opts CabOptions) Dataset { return datagen.Cab(opts) }

// GenerateSM builds the synthetic check-in stream.
func GenerateSM(opts SMOptions) Dataset { return datagen.SM(opts) }

// SampleWorkload draws two overlapping, downsampled, anonymized datasets
// from a ground dataset, with ground truth for evaluation.
func SampleWorkload(src *Dataset, opts SampleOptions) SampledWorkload {
	return datagen.Sample(src, opts)
}

// Metrics holds precision/recall/F1 of produced links against ground truth.
type Metrics struct {
	Precision float64
	Recall    float64
	F1        float64
	TP, FP    int
	FN        int
}

// Evaluate scores links against a ground-truth map (E entity → I entity).
func Evaluate(links []Link, truth map[EntityID]EntityID) Metrics {
	pairs := make([]eval.LinkPair, len(links))
	for i, l := range links {
		pairs[i] = eval.LinkPair{U: l.U, V: l.V}
	}
	p := eval.Score(pairs, eval.Truth(truth))
	return Metrics{
		Precision: p.Precision, Recall: p.Recall, F1: p.F1,
		TP: p.TP, FP: p.FP, FN: p.FN,
	}
}
