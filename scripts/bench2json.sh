#!/usr/bin/env bash
# bench2json.sh <bench-output.txt> — convert `go test -bench` output to a
# JSON array (one object per benchmark, metric columns keyed by unit),
# the schema of the BENCH_*.json artifacts CI uploads for trend tracking.
set -euo pipefail
awk 'BEGIN { print "[" }
     /^Benchmark/ {
       if (n++) printf(",\n")
       printf("  {\"name\":\"%s\",\"iterations\":%s", $1, $2)
       for (i = 3; i < NF; i += 2) printf(",\"%s\":%s", $(i+1), $i)
       printf("}")
     }
     END { print "\n]" }' "$1"
