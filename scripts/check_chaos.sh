#!/usr/bin/env bash
# check_chaos.sh — the fault-injection gate CI runs on every change.
#
# Runs both chaos suites under the race detector:
#   * TestServerChaos  — in-process: a fixed-seed randomized fault
#     schedule (disk errors, write delays, relink panics) against a live
#     node under concurrent JSON + binary ingest, then an exact WAL
#     audit: every acked batch durable, every rejected batch absent.
#   * TestCLISlimdChaos — through the compiled slimd binary via the
#     -fault flag: the degraded-mode 503 contract, self-healing, a
#     contained relink panic, and crash recovery to exactly the acked
#     batches.
#
# Both schedules are seed-fixed, so a failure here replays exactly.
#
# Usage: scripts/check_chaos.sh  (from the repo root; CI runs it there)
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== in-process chaos suite (race detector on)"
go test -race -count=1 -run 'TestServerChaos' ./internal/server/

echo "== slimd binary chaos suite (race detector on)"
go test -race -count=1 -run 'TestCLISlimdChaos' ./cmd/

echo "OK: chaos suites passed"
