#!/usr/bin/env bash
# bench_diff.sh <baseline.json> <current.json> [factor]
#
# Compares a CI benchmark run (BENCH_*.json, the bench2json.sh schema)
# against the committed baseline and fails when any benchmark present in
# the baseline regressed by more than <factor>x in ns/op (default 2, or
# $BENCH_DIFF_FACTOR). A benchmark that disappeared from the current run
# is a failure too — a gated metric must not silently vanish. Benchmarks
# only present in the current run are reported but not gated, so adding a
# benchmark does not require touching the baseline in the same commit.
#
# Baselines live in bench/ and are refreshed deliberately (run the CI
# bench commands locally, copy the JSON over) whenever a PR moves a gated
# metric on purpose.
set -euo pipefail

if [ $# -lt 2 ]; then
    echo "usage: $0 <baseline.json> <current.json> [factor]" >&2
    exit 2
fi
base=$1
cur=$2
factor=${3:-${BENCH_DIFF_FACTOR:-2}}

# extract <file> — print "name ns/op" per benchmark, stripping the
# -<procs> suffix go test appends to benchmark names so baselines are
# comparable across machines with different core counts.
extract() {
    tr ',' '\n' <"$1" | awk '
        /"name":/    { if (match($0, /"name":"[^"]*"/)) { n = substr($0, RSTART+8, RLENGTH-9); sub(/-[0-9]+$/, "", n) } }
        /"ns\/op":/  { if (match($0, /[0-9.eE+]+/)) print n, substr($0, RSTART, RLENGTH) }
    '
}

fail=0
while read -r name ns; do
    curns=$(extract "$cur" | awk -v n="$name" '$1 == n { print $2; exit }')
    if [ -z "$curns" ]; then
        echo "FAIL $name: present in baseline $base but missing from $cur"
        fail=1
        continue
    fi
    verdict=$(awk -v b="$ns" -v c="$curns" -v f="$factor" 'BEGIN {
        ratio = (b > 0) ? c / b : 0
        printf "%.2f %s", ratio, (ratio > f) ? "FAIL" : "ok"
    }')
    ratio=${verdict% *}
    status=${verdict#* }
    printf '%-4s %s: baseline %s ns/op, current %s ns/op (%sx, limit %sx)\n' \
        "$status" "$name" "$ns" "$curns" "$ratio" "$factor"
    if [ "$status" = FAIL ]; then
        fail=1
    fi
done < <(extract "$base")

extract "$cur" | while read -r name ns; do
    if ! extract "$base" | awk -v n="$name" '$1 == n { found = 1 } END { exit !found }'; then
        echo "new  $name: %s ns/op (no baseline yet)" | sed "s/%s/$ns/"
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "bench_diff: regression beyond ${factor}x against $base" >&2
    exit 1
fi
