#!/usr/bin/env bash
# check_metrics.sh — e2e smoke of the /metrics plane against a real slimd.
#
# Builds slimd, boots it empty on a loopback port, ingests one batch,
# forces a relink, scrapes GET /metrics, and validates that:
#   * the exposition parses (every line is a comment or name{labels} value),
#   * every required metric family is declared with # TYPE,
#   * the freshness pipeline moved (ingest_to_visible count > 0) and
#     drained (staleness ~0).
#
# Usage: scripts/check_metrics.sh  (from the repo root; CI runs it there)
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
slimd_pid=""
cleanup() {
  if [ -n "$slimd_pid" ]; then
    kill "$slimd_pid" 2>/dev/null || true
    wait "$slimd_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir" 2>/dev/null || true
}
trap cleanup EXIT

echo "== building slimd"
go build -o "$workdir/slimd" ./cmd/slimd

echo "== booting slimd"
# -data-dir: the storage families (health, reopen retries) only register
# when a store is attached.
"$workdir/slimd" -addr 127.0.0.1:0 -shards 2 -debounce 50ms \
  -data-dir "$workdir/data" \
  >"$workdir/slimd.log" 2>&1 &
slimd_pid=$!

# The bound address is in the structured "listening" log line (addr=...).
addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's/.*msg=listening .*addr=\([^ ]*\).*/\1/p' "$workdir/slimd.log" | head -n1)"
  [ -n "$addr" ] && break
  kill -0 "$slimd_pid" 2>/dev/null || { echo "slimd died:"; cat "$workdir/slimd.log"; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { echo "slimd never logged its address"; cat "$workdir/slimd.log"; exit 1; }
base="http://$addr"
echo "   serving on $base"

for _ in $(seq 1 100); do
  curl -fsS "$base/readyz" >/dev/null 2>&1 && break
  sleep 0.1
done

echo "== ingesting one batch and relinking"
curl -fsS -X POST -H 'Content-Type: application/json' \
  -d '{"records":[{"entity":"m1","lat":40.7,"lng":-74.0,"unix":1700000000},{"entity":"m1","lat":40.8,"lng":-74.1,"unix":1700000600}]}' \
  "$base/v1/datasets/e/records" >/dev/null
# Mirror the trajectory into dataset i so (m1, m1) links — the provenance
# round trip below needs a pair with a real edge and score decomposition.
# A second entity on a different route makes the IDF weights positive
# (cells seen by every entity weigh log(N/df) = 0).
curl -fsS -X POST -H 'Content-Type: application/json' \
  -d '{"records":[{"entity":"m2","lat":41.2,"lng":-73.5,"unix":1700000000},{"entity":"m2","lat":41.3,"lng":-73.6,"unix":1700000600}]}' \
  "$base/v1/datasets/e/records" >/dev/null
curl -fsS -X POST -H 'Content-Type: application/json' \
  -d '{"records":[{"entity":"m1","lat":40.7,"lng":-74.0,"unix":1700000030},{"entity":"m1","lat":40.8,"lng":-74.1,"unix":1700000630},{"entity":"m2","lat":41.2,"lng":-73.5,"unix":1700000030},{"entity":"m2","lat":41.3,"lng":-73.6,"unix":1700000630}]}' \
  "$base/v1/datasets/i/records" >/dev/null
curl -fsS -X POST "$base/v1/link" >/dev/null

echo "== scraping /metrics"
metrics="$workdir/metrics.txt"
curl -fsS "$base/metrics" >"$metrics"

echo "== validating exposition format"
# Every line must be a HELP/TYPE comment or "name[{labels}] value".
# Label values are quoted strings that may themselves contain '{' or '}'
# (e.g. route="POST /v1/datasets/{dataset}/records"), so the label
# matcher must track quotes, not just scan to the first brace.
lv='(\\.|[^"\\])*'
label="[a-zA-Z_][a-zA-Z0-9_]*=\"$lv\""
sample="^[a-zA-Z_:][a-zA-Z0-9_:]*(\{($label(,$label)*)?\})? (NaN|[+-]?Inf|[-+0-9.eE]+)\$"
bad="$(grep -Ev "^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?\$|$sample|^\$" "$metrics" || true)"
if [ -n "$bad" ]; then
  echo "malformed exposition lines:"
  echo "$bad"
  exit 1
fi

echo "== checking required metric families"
required='
slim_relink_seconds
slim_relink_stage_seconds
slim_relink_runs_total
slim_ingest_to_visible_seconds
slim_link_staleness_seconds
slim_ingest_accepted_records_total
slim_ingest_shed_requests_total
slim_http_request_seconds
slim_http_requests_total
slim_pending_records
slim_health_state
slim_storage_reopen_retries_total
slim_relink_panics_total
slim_relink_stuck_seconds
slim_build_info
slim_go_goroutines
slim_go_heap_alloc_bytes
slim_go_gc_pause_total_seconds
slim_edge_store_pairs
slim_edge_store_resident_bytes
slim_run_journal_records
slim_publish_tail_edges
slim_publish_tail_reused_prefix_len
slim_publish_tail_suffix_walked
slim_publish_tail_full_rebuilds_total
slim_publish_tail_applies_total
slim_threshold_fit_total
'
missing=0
for name in $required; do
  if ! grep -q "^# TYPE $name " "$metrics"; then
    echo "missing family: $name"
    missing=1
  fi
done
[ "$missing" -eq 0 ] || exit 1

echo "== round-tripping the provenance endpoints"
explain="$workdir/explain.json"
curl -fsS "$base/v1/explain?e=m1&i=m1" >"$explain"
grep -q '"rescored_seq"' "$explain" \
  || { echo "/v1/explain missing edge lineage:"; cat "$explain"; exit 1; }
grep -q '"windows"' "$explain" \
  || { echo "/v1/explain missing score decomposition:"; cat "$explain"; exit 1; }
runs="$workdir/runs.json"
curl -fsS "$base/v1/runs?limit=5" >"$runs"
grep -q '"total_runs"' "$runs" && grep -q '"trigger"' "$runs" \
  || { echo "/v1/runs missing journal records:"; cat "$runs"; exit 1; }
# Parameter validation must reject a half-specified pair.
code="$(curl -s -o /dev/null -w '%{http_code}' "$base/v1/explain?e=m1")"
[ "$code" = "400" ] || { echo "/v1/explain without i returned $code, want 400"; exit 1; }

echo "== checking the freshness pipeline moved and drained"
count="$(sed -n 's/^slim_ingest_to_visible_seconds_count \(.*\)$/\1/p' "$metrics")"
stale="$(sed -n 's/^slim_link_staleness_seconds \(.*\)$/\1/p' "$metrics")"
awk -v c="$count" 'BEGIN { exit !(c+0 >= 1) }' \
  || { echo "slim_ingest_to_visible_seconds_count=$count, want >= 1"; exit 1; }
awk -v s="$stale" 'BEGIN { exit !(s+0 < 1) }' \
  || { echo "slim_link_staleness_seconds=$stale, want ~0 after quiesce"; exit 1; }

echo "OK: /metrics serves $(grep -c '^# TYPE ' "$metrics") families; ingest_to_visible_count=$count staleness=$stale"
