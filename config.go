package slim

import (
	"errors"
	"fmt"
	"runtime"
)

// MatcherKind selects the bipartite matching algorithm.
type MatcherKind string

const (
	// MatcherGreedy is the paper's greedy maximum-sum heuristic (default).
	MatcherGreedy MatcherKind = "greedy"
	// MatcherHungarian computes the exact maximum-weight matching. Cubic
	// cost; intended for small instances.
	MatcherHungarian MatcherKind = "hungarian"
)

// ThresholdMethod selects the automated linkage stop-threshold detector.
type ThresholdMethod string

const (
	// ThresholdGMM is the paper's default: 2-component Gaussian mixture
	// with expected-F1 maximization (falls back to Otsu / midpoint on
	// degenerate fits).
	ThresholdGMM ThresholdMethod = "gmm"
	// ThresholdOtsu uses Otsu's method directly.
	ThresholdOtsu ThresholdMethod = "otsu"
	// ThresholdKMeans uses 2-means cluster centers' midpoint.
	ThresholdKMeans ThresholdMethod = "2means"
	// ThresholdNone disables the stop threshold: every matched pair with a
	// positive score is linked (the "full matching" the paper warns
	// against; useful for ablation).
	ThresholdNone ThresholdMethod = "none"
)

// LSHConfig enables and parameterizes the locality-sensitive-hashing
// candidate filter (Sec. 4).
type LSHConfig struct {
	// Threshold is the target signature similarity t (default 0.6).
	Threshold float64
	// StepWindows is the dominating-cell query size in temporal windows
	// (default 48: 12h of 15-minute windows, the paper's sweet spot).
	StepWindows int
	// SpatialLevel is the dominating-cell grid level (default 16).
	SpatialLevel int
	// NumBuckets is the bucket-array size per band (default 4096).
	NumBuckets int
}

func (c *LSHConfig) defaults() {
	if c.Threshold == 0 {
		c.Threshold = 0.6
	}
	if c.StepWindows == 0 {
		c.StepWindows = 48
	}
	if c.SpatialLevel == 0 {
		c.SpatialLevel = 16
	}
	if c.NumBuckets == 0 {
		c.NumBuckets = 4096
	}
}

// Ablation switches off individual similarity components, mirroring the
// paper's Sec. 5.4 study. The zero value is full SLIM.
type Ablation struct {
	// DisableMFN skips the mutually-furthest-neighbor alibi pass ("MNN").
	DisableMFN bool
	// AllPairs matches every bin pair per window instead of MNN pairing.
	AllPairs bool
	// DisableIDF removes the uniqueness award ("No IDF").
	DisableIDF bool
	// DisableNorm removes history-length normalization ("No Normalization").
	DisableNorm bool
}

// Config parameterizes a linkage run. The zero value plus Defaults() gives
// the paper's default setup: 15-minute windows, spatial level 12, 2 km/min
// speed bound, b = 0.5, greedy matching, GMM stop threshold, no LSH.
type Config struct {
	// WindowMinutes is the temporal window width (default 15).
	WindowMinutes float64
	// SpatialLevel is the grid level of history bins. 0 requests
	// auto-tuning via the Sec. 3.3 elbow probe.
	SpatialLevel int
	// MaxSpeedKmPerMin bounds entity movement; with WindowMinutes it
	// defines the runaway distance (default 2, the paper's US-highway
	// bound).
	MaxSpeedKmPerMin float64
	// B is the BM25-style normalization strength in [0, 1] (default 0.5).
	B float64
	// MinRecords drops entities with ≤ MinRecords records (default 5).
	MinRecords int
	// Workers bounds scoring parallelism (default GOMAXPROCS).
	Workers int
	// Matcher selects greedy (default) or exact matching.
	Matcher MatcherKind
	// Threshold selects the stop-threshold detector (default GMM).
	Threshold ThresholdMethod
	// LSH, when non-nil, enables the candidate filter.
	LSH *LSHConfig
	// Ablation disables similarity components for studies.
	Ablation Ablation
}

// Defaults returns the paper's default configuration.
func Defaults() Config {
	return Config{
		WindowMinutes:    15,
		SpatialLevel:     12,
		MaxSpeedKmPerMin: 2,
		B:                0.5,
		MinRecords:       5,
		Matcher:          MatcherGreedy,
		Threshold:        ThresholdGMM,
	}
}

// Normalized returns a copy of the configuration with unset fields filled
// with defaults and all ranges validated — the effective configuration a
// linkage will run with. Engines that partition one logical linkage across
// several Linkers resolve the configuration once with Normalized and hand
// the same copy to every shard.
func (c Config) Normalized() (Config, error) {
	if err := c.normalize(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// normalize fills unset fields with defaults and validates ranges.
func (c *Config) normalize() error {
	if c.WindowMinutes == 0 {
		c.WindowMinutes = 15
	}
	if c.WindowMinutes < 0 {
		return errors.New("slim: WindowMinutes must be positive")
	}
	if c.SpatialLevel < 0 || c.SpatialLevel > 30 {
		return fmt.Errorf("slim: SpatialLevel %d outside [0, 30]", c.SpatialLevel)
	}
	if c.MaxSpeedKmPerMin == 0 {
		c.MaxSpeedKmPerMin = 2
	}
	if c.MaxSpeedKmPerMin < 0 {
		return errors.New("slim: MaxSpeedKmPerMin must be positive")
	}
	if c.B == 0 {
		c.B = 0.5
	}
	if c.B < 0 || c.B > 1 {
		return fmt.Errorf("slim: B %g outside [0, 1]", c.B)
	}
	if c.MinRecords == 0 {
		c.MinRecords = 5
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Matcher == "" {
		c.Matcher = MatcherGreedy
	}
	switch c.Matcher {
	case MatcherGreedy, MatcherHungarian:
	default:
		return fmt.Errorf("slim: unknown matcher %q", c.Matcher)
	}
	if c.Threshold == "" {
		c.Threshold = ThresholdGMM
	}
	switch c.Threshold {
	case ThresholdGMM, ThresholdOtsu, ThresholdKMeans, ThresholdNone:
	default:
		return fmt.Errorf("slim: unknown threshold method %q", c.Threshold)
	}
	if c.LSH != nil {
		lshCopy := *c.LSH
		lshCopy.defaults()
		if lshCopy.Threshold <= 0 || lshCopy.Threshold >= 1 {
			return fmt.Errorf("slim: LSH threshold %g outside (0, 1)", lshCopy.Threshold)
		}
		if lshCopy.SpatialLevel < 0 || lshCopy.SpatialLevel > 30 {
			return fmt.Errorf("slim: LSH spatial level %d outside [0, 30]", lshCopy.SpatialLevel)
		}
		c.LSH = &lshCopy
	}
	return nil
}
