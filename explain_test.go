package slim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// requireBreakdownParity asserts that ScoreBreakdown(u, v) recomposes to
// Score(u, v) bit for bit, three ways: the reported Total, the window
// sums re-summed in window order, and each window's sum re-summed from
// its pair contributions in accumulation order. Bit equality
// (math.Float64bits) is deliberate — the breakdown replicates the
// kernel's floating-point accumulation sequence, not an approximation
// of it.
func requireBreakdownParity(t *testing.T, lk *Linker, step string) {
	t.Helper()
	for _, u := range lk.EntitiesE() {
		for _, v := range lk.EntitiesI() {
			want := lk.Score(u, v)
			bd := lk.ScoreBreakdown(u, v)
			if math.Float64bits(bd.Total) != math.Float64bits(want) {
				t.Fatalf("%s: breakdown total %v != score %v for (%s, %s)",
					step, bd.Total, want, u, v)
			}
			var total float64
			for _, wb := range bd.Windows {
				var sum float64
				for _, pc := range wb.Pairs {
					sum += pc.Contribution
				}
				if math.Float64bits(sum) != math.Float64bits(wb.Sum) {
					t.Fatalf("%s: window %d pair sum %v != window sum %v for (%s, %s)",
						step, wb.Window, sum, wb.Sum, u, v)
				}
				total += wb.Sum
			}
			if math.Float64bits(total) != math.Float64bits(want) {
				t.Fatalf("%s: re-summed windows %v != score %v for (%s, %s)",
					step, total, want, u, v)
			}
		}
	}
}

// TestScoreBreakdownRecomposesBitIdentically is the explainability
// slow path's exactness gate: across randomized workloads, ingest bursts
// of every churn kind (the same shapes as the relink parity suite), and
// every scoring ablation, the per-window decomposition must recompose to
// the kernel's Score bit-identically for every cross pair.
func TestScoreBreakdownRecomposesBitIdentically(t *testing.T) {
	scenarios := []struct {
		name string
		abl  Ablation
	}{
		{"default", Ablation{}},
		{"no-mfn", Ablation{DisableMFN: true}},
		{"all-pairs", Ablation{AllPairs: true}},
		{"no-idf", Ablation{DisableIDF: true}},
		{"no-norm", Ablation{DisableNorm: true}},
	}
	for _, sc := range scenarios {
		for _, seed := range []int64{3, 19} {
			t.Run(fmt.Sprintf("%s/seed%d", sc.name, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				cfg := Defaults()
				cfg.Ablation = sc.abl

				ground := GenerateCab(CabOptions{NumTaxis: 14, Days: 2, MeanRecordIntervalSec: 420, Seed: seed})
				w := SampleWorkload(&ground, SampleOptions{
					IntersectionRatio: 0.5, InclusionProbE: 0.7, InclusionProbI: 0.7, Seed: seed + 1,
				})
				p, err := PrepareLinkage(w.E, w.I, cfg)
				if err != nil {
					t.Fatal(err)
				}
				opt := ShardOptions{EpochUnix: p.EpochUnix, SpatialLevel: p.Config.SpatialLevel}
				lk, err := NewShardLinker(p.E, p.I, p.Config, opt)
				if err != nil {
					t.Fatal(err)
				}
				lk.Run()
				requireBreakdownParity(t, lk, "seed")

				lo, hi, _ := p.E.TimeRange()
				es := lk.EntitiesE()
				is := lk.EntitiesI()
				// The same churn kinds as the relink parity suite:
				// re-observations, new cells, range growth in both
				// directions, and a brand-new entity pair.
				for burst, kind := range []int{0, 2, 1, 3, 4} {
					switch kind {
					case 0:
						for k := 0; k < 4; k++ {
							u := es[rng.Intn(len(es))]
							lk.AddE(NewRecord(u, 37.2+rng.Float64()*0.1, -121.9, lo+rng.Int63n(hi-lo)))
						}
					case 1:
						v := is[rng.Intn(len(is))]
						r := NewRecord(v, 37.6+rng.Float64(), -121.5, lo+rng.Int63n(hi-lo))
						r.RadiusKm = 0.5 + rng.Float64()
						lk.AddI(r)
					case 2:
						hi += 86400
						lk.AddI(NewRecord(is[rng.Intn(len(is))], 37.3, -121.8, hi))
					case 3:
						lo -= 86400
						lk.AddE(NewRecord(es[rng.Intn(len(es))], 37.3, -121.8, lo))
					case 4:
						for k := 0; k < 6; k++ {
							unix := lo + rng.Int63n(hi-lo)
							lk.AddE(NewRecord("fresh-e", 37.2+float64(k%3)*0.05, -121.9, unix))
							lk.AddI(NewRecord("fresh-i", 37.2+float64(k%3)*0.05, -121.9, unix+40))
						}
					}
					lk.Run()
					requireBreakdownParity(t, lk, fmt.Sprintf("burst %d (kind %d)", burst, kind))
				}
			})
		}
	}
}

// TestLinkerExplainJoinsAllLayers exercises the joined provenance query
// on an LSH-enabled linker: for a published link, the breakdown total
// must equal the retained edge score bit for bit, the candidate lineage
// must agree with the pair being a candidate (band-collision invariant
// included), and the edge lineage must carry the run stamps.
func TestLinkerExplainJoinsAllLayers(t *testing.T) {
	cfg := Defaults()
	cfg.LSH = &LSHConfig{Threshold: 0.2, StepWindows: 48, SpatialLevel: 13, NumBuckets: 1 << 14}
	ground := GenerateCab(CabOptions{NumTaxis: 14, Days: 2, MeanRecordIntervalSec: 420, Seed: 5})
	w := SampleWorkload(&ground, SampleOptions{
		IntersectionRatio: 0.6, InclusionProbE: 0.7, InclusionProbI: 0.7, Seed: 6,
	})
	lk, err := NewLinker(w.E, w.I, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := lk.Run()
	if len(res.Links) == 0 {
		t.Fatal("workload produced no links")
	}
	for _, l := range res.Links {
		ex := lk.Explain(l.U, l.V)
		if ex.Breakdown == nil || !ex.Breakdown.Known {
			t.Fatalf("link (%s, %s): breakdown missing or unknown", l.U, l.V)
		}
		if math.Float64bits(ex.Breakdown.Total) != math.Float64bits(l.Score) {
			t.Fatalf("link (%s, %s): breakdown total %v != link score %v",
				l.U, l.V, ex.Breakdown.Total, l.Score)
		}
		if !ex.Edge.Linked {
			t.Fatalf("link (%s, %s): edge lineage not linked", l.U, l.V)
		}
		if ex.Edge.Score != l.Score {
			t.Fatalf("link (%s, %s): lineage score %v != link score %v",
				l.U, l.V, ex.Edge.Score, l.Score)
		}
		if ex.Edge.RescoredSeq == 0 || ex.Edge.RetainedSinceSeq == 0 {
			t.Fatalf("link (%s, %s): lineage missing run stamps: %+v", l.U, l.V, ex.Edge)
		}
		ce := ex.Candidates
		if ce == nil {
			t.Fatalf("link (%s, %s): LSH enabled but candidate lineage nil", l.U, l.V)
		}
		if !ce.Candidate || !ce.HasU || !ce.HasV {
			t.Fatalf("link (%s, %s): candidate lineage %+v, want candidate with both signatures", l.U, l.V, ce)
		}
		if int(ce.BandCount) != len(ce.Collisions) {
			t.Fatalf("link (%s, %s): band count %d != %d collisions",
				l.U, l.V, ce.BandCount, len(ce.Collisions))
		}
		for _, bc := range ce.Collisions {
			if bc.BucketE < 1 || bc.BucketI < 1 {
				t.Fatalf("link (%s, %s): collision %+v has empty bucket side", l.U, l.V, bc)
			}
		}
	}
	// A pair that is not a retained edge explains as unlinked with the
	// breakdown still available.
	ex := lk.Explain("no-such-entity", lk.EntitiesI()[0])
	if ex.Edge.Linked {
		t.Fatalf("unknown pair reported linked: %+v", ex.Edge)
	}
	if ex.Breakdown == nil || ex.Breakdown.Known {
		t.Fatalf("unknown entity should yield an unknown breakdown, got %+v", ex.Breakdown)
	}
}
