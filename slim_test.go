package slim

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// cabWorkload builds a small sampled Cab linkage problem with truth.
func cabWorkload(t testing.TB, taxis int, seed int64) SampledWorkload {
	t.Helper()
	src := GenerateCab(CabOptions{NumTaxis: taxis, Days: 2, MeanRecordIntervalSec: 360, Seed: seed})
	return SampleWorkload(&src, SampleOptions{
		IntersectionRatio: 0.5,
		InclusionProbE:    0.5,
		InclusionProbI:    0.5,
		Seed:              seed + 1,
	})
}

func TestLinkCabEndToEnd(t *testing.T) {
	w := cabWorkload(t, 30, 1)
	res, err := LinkDatasets(w.E, w.I, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	m := Evaluate(res.Links, w.Truth)
	if m.F1 < 0.75 {
		t.Errorf("Cab default F1 = %.3f (P=%.3f R=%.3f, %d links, thr=%.1f/%s), want >= 0.75",
			m.F1, m.Precision, m.Recall, len(res.Links), res.Threshold, res.ThresholdMethod)
	}
	if res.Stats.RecordComparisons == 0 || res.Stats.CandidatePairs == 0 {
		t.Error("work counters not populated")
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not measured")
	}
	// Links are sorted by descending score and are a subset of Matched.
	for i := 1; i < len(res.Links); i++ {
		if res.Links[i].Score > res.Links[i-1].Score {
			t.Fatal("links not sorted by descending score")
		}
	}
	if len(res.Links) > len(res.Matched) {
		t.Fatal("links exceed matched set")
	}
}

func TestLinkDeterministic(t *testing.T) {
	w := cabWorkload(t, 16, 2)
	cfg := Defaults()
	first, err := LinkDatasets(w.E, w.I, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 2; trial++ {
		again, err := LinkDatasets(w.E, w.I, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Links) != len(first.Links) {
			t.Fatalf("link count varies: %d vs %d", len(again.Links), len(first.Links))
		}
		for i := range first.Links {
			if first.Links[i] != again.Links[i] {
				t.Fatalf("links vary across runs: %v vs %v", first.Links[i], again.Links[i])
			}
		}
		if again.Threshold != first.Threshold {
			t.Fatalf("threshold varies: %g vs %g", again.Threshold, first.Threshold)
		}
	}
}

func TestLinkWithLSHPreservesQuality(t *testing.T) {
	w := cabWorkload(t, 30, 3)
	base, err := LinkDatasets(w.E, w.I, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Defaults()
	cfg.LSH = &LSHConfig{Threshold: 0.2, StepWindows: 48, SpatialLevel: 12, NumBuckets: 1 << 14}
	fast, err := LinkDatasets(w.E, w.I, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Stats.LSH == nil {
		t.Fatal("LSH stats missing")
	}
	if fast.Stats.CandidatePairs >= base.Stats.CandidatePairs {
		t.Errorf("LSH did not reduce candidates: %d vs %d",
			fast.Stats.CandidatePairs, base.Stats.CandidatePairs)
	}
	if fast.Stats.RecordComparisons >= base.Stats.RecordComparisons {
		t.Errorf("LSH did not reduce record comparisons: %d vs %d",
			fast.Stats.RecordComparisons, base.Stats.RecordComparisons)
	}
	mBase := Evaluate(base.Links, w.Truth)
	mFast := Evaluate(fast.Links, w.Truth)
	if mBase.F1 > 0 && mFast.F1 < 0.7*mBase.F1 {
		t.Errorf("LSH relative F1 = %.3f (%.3f vs %.3f), want >= 0.7",
			mFast.F1/mBase.F1, mFast.F1, mBase.F1)
	}
}

func TestLinkHungarianMatcherRuns(t *testing.T) {
	w := cabWorkload(t, 12, 4)
	cfg := Defaults()
	cfg.Matcher = MatcherHungarian
	res, err := LinkDatasets(w.E, w.I, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := Evaluate(res.Links, w.Truth)
	if m.F1 == 0 && len(w.Truth) > 0 {
		t.Errorf("hungarian matcher produced no correct links")
	}
}

func TestLinkAblationsRun(t *testing.T) {
	w := cabWorkload(t, 12, 5)
	for _, abl := range []Ablation{
		{DisableMFN: true},
		{AllPairs: true},
		{DisableIDF: true},
		{DisableNorm: true},
	} {
		cfg := Defaults()
		cfg.Ablation = abl
		if _, err := LinkDatasets(w.E, w.I, cfg); err != nil {
			t.Errorf("ablation %+v failed: %v", abl, err)
		}
	}
}

func TestLinkThresholdMethods(t *testing.T) {
	w := cabWorkload(t, 16, 6)
	for _, th := range []ThresholdMethod{ThresholdGMM, ThresholdOtsu, ThresholdKMeans, ThresholdNone} {
		cfg := Defaults()
		cfg.Threshold = th
		res, err := LinkDatasets(w.E, w.I, cfg)
		if err != nil {
			t.Fatalf("threshold %s failed: %v", th, err)
		}
		if th == ThresholdNone && len(res.Links) != len(res.Matched) {
			t.Error("ThresholdNone must keep the full matching")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	w := cabWorkload(t, 8, 7)
	bad := []Config{
		{WindowMinutes: -5},
		{SpatialLevel: 35},
		{MaxSpeedKmPerMin: -1},
		{B: 1.5},
		{Matcher: "quantum"},
		{Threshold: "magic"},
		{LSH: &LSHConfig{Threshold: 1.5}},
		{LSH: &LSHConfig{SpatialLevel: 31}},
	}
	for _, cfg := range bad {
		if _, err := LinkDatasets(w.E, w.I, cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
}

func TestLinkerScoreAPI(t *testing.T) {
	w := cabWorkload(t, 12, 8)
	lk, err := NewLinker(w.E, w.I, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	// A true pair should outscore a random wrong pair on average; at
	// minimum the API must return deterministic finite values.
	es := lk.EntitiesE()
	is := lk.EntitiesI()
	if len(es) == 0 || len(is) == 0 {
		t.Fatal("no entities after filtering")
	}
	s1 := lk.Score(es[0], is[0])
	s2 := lk.Score(es[0], is[0])
	if s1 != s2 {
		t.Error("Score is not deterministic")
	}
	if math.IsNaN(s1) || math.IsInf(s1, 0) {
		t.Errorf("degenerate score %g", s1)
	}
	if lk.SpatialLevel() != 12 {
		t.Errorf("spatial level = %d, want default 12", lk.SpatialLevel())
	}
	if lk.Windowing().WidthSeconds != 900 {
		t.Errorf("window width = %d, want 900", lk.Windowing().WidthSeconds)
	}
}

func TestAutoTuneSpatialLevelAPI(t *testing.T) {
	w := cabWorkload(t, 16, 9)
	cfg := Defaults()
	level, c1, c2, err := AutoTuneSpatialLevel(w.E, w.I, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if level < 4 || level > 20 {
		t.Errorf("auto-tuned level = %d, want within probe range", level)
	}
	if len(c1.Levels) == 0 || len(c2.Levels) == 0 {
		t.Error("curves not populated")
	}
	if level != c1.Level && level != c2.Level {
		t.Error("chosen level must come from one curve")
	}
	// And the auto-tuned pipeline must run.
	cfg.SpatialLevel = 0
	res, err := LinkDatasets(w.E, w.I, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpatialLevel == 0 {
		t.Error("auto-tuned run must report the level it used")
	}
}

func TestEvaluateMetrics(t *testing.T) {
	truth := map[EntityID]EntityID{"e1": "i1", "e2": "i2", "e3": "i3", "e4": "i4"}
	links := []Link{
		{U: "e1", V: "i1"}, // TP
		{U: "e2", V: "i9"}, // FP
		{U: "e3", V: "i3"}, // TP
	}
	m := Evaluate(links, truth)
	if m.TP != 2 || m.FP != 1 || m.FN != 2 {
		t.Fatalf("counts TP=%d FP=%d FN=%d", m.TP, m.FP, m.FN)
	}
	if math.Abs(m.Precision-2.0/3) > 1e-12 {
		t.Errorf("precision = %g", m.Precision)
	}
	if math.Abs(m.Recall-0.5) > 1e-12 {
		t.Errorf("recall = %g", m.Recall)
	}
	wantF1 := 2 * (2.0 / 3) * 0.5 / (2.0/3 + 0.5)
	if math.Abs(m.F1-wantF1) > 1e-12 {
		t.Errorf("f1 = %g, want %g", m.F1, wantF1)
	}
	empty := Evaluate(nil, truth)
	if empty.Precision != 0 || empty.Recall != 0 || empty.F1 != 0 {
		t.Error("no links should score all zeros")
	}
}

func TestCSVRoundTripPublicAPI(t *testing.T) {
	d := Dataset{Name: "x"}
	d.Records = append(d.Records, NewRecord("a", 37.7, -122.4, 1000))
	d.Records = append(d.Records, NewRecord("b", 40.7, -74.0, 2000))
	var buf bytes.Buffer
	if err := WriteDatasetCSV(&buf, &d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDatasetCSV(strings.NewReader(buf.String()), "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 2 {
		t.Fatalf("round trip lost records")
	}
	if _, err := ReadDatasetCSV(strings.NewReader("garbage"), "x"); err == nil {
		t.Error("garbage CSV should error")
	}
}

func TestNewRecordClamps(t *testing.T) {
	r := NewRecord("a", 95, 200, 5)
	if !r.LatLng.IsValid() {
		t.Error("NewRecord must clamp to valid coordinates")
	}
}

func TestLinkEmptyDatasets(t *testing.T) {
	var e, i Dataset
	res, err := LinkDatasets(e, i, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Links) != 0 {
		t.Error("empty datasets must give no links")
	}
	// With LSH enabled too.
	cfg := Defaults()
	cfg.LSH = &LSHConfig{}
	res, err = LinkDatasets(e, i, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Links) != 0 {
		t.Error("empty datasets must give no links (LSH)")
	}
}

func TestLinkRejectsInvalidRecords(t *testing.T) {
	bad := Dataset{Name: "bad", Records: []Record{{Entity: "", Unix: 0}}}
	good := Dataset{Name: "good"}
	if _, err := LinkDatasets(bad, good, Defaults()); err == nil {
		t.Error("invalid dataset should be rejected")
	}
	if _, err := LinkDatasets(good, bad, Defaults()); err == nil {
		t.Error("invalid dataset should be rejected (I side)")
	}
}

func TestIntersectionRatioAffectsFalsePositives(t *testing.T) {
	// With a low intersection ratio many entities have no true match; the
	// stop threshold exists to protect precision there (Sec. 3.2). Verify
	// the full matching (no threshold) has strictly more false positives
	// than the thresholded links on such a workload.
	src := GenerateCab(CabOptions{NumTaxis: 40, Days: 2, MeanRecordIntervalSec: 360, Seed: 10})
	w := SampleWorkload(&src, SampleOptions{IntersectionRatio: 0.3, InclusionProbE: 0.5, InclusionProbI: 0.5, Seed: 11})
	res, err := LinkDatasets(w.E, w.I, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	mAll := Evaluate(res.Matched, w.Truth)
	mThr := Evaluate(res.Links, w.Truth)
	if mThr.FP > mAll.FP {
		t.Errorf("threshold increased FPs: %d > %d", mThr.FP, mAll.FP)
	}
	if mAll.FP > 0 && mThr.Precision < mAll.Precision {
		t.Errorf("threshold reduced precision: %.3f < %.3f", mThr.Precision, mAll.Precision)
	}
}

func BenchmarkLinkCabSmall(b *testing.B) {
	w := cabWorkload(b, 16, 12)
	cfg := Defaults()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LinkDatasets(w.E, w.I, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
