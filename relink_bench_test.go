package slim

import (
	"slices"
	"testing"
	"time"
)

// relinkFixture builds the standard streaming-relink scenario for the
// edge-store benchmarks: the datagen Cab workload loaded into a
// brute-force Linker (every cross pair is a candidate, so scoring cost is
// undiluted by the LSH filter), warmed with one full Run, plus the E-side
// records grouped by entity so bursts can re-observe real visits.
func relinkFixture(tb testing.TB, taxis int) (*Linker, map[EntityID][]Record) {
	tb.Helper()
	ground := GenerateCab(CabOptions{NumTaxis: taxis, Days: 2, MeanRecordIntervalSec: 360, Seed: 99})
	w := SampleWorkload(&ground, SampleOptions{
		IntersectionRatio: 0.5, InclusionProbE: 0.5, InclusionProbI: 0.5, Seed: 100,
	})
	lk, err := NewLinker(w.E, w.I, Defaults())
	if err != nil {
		tb.Fatal(err)
	}
	byEntity := make(map[EntityID][]Record)
	for _, r := range w.E.Records {
		byEntity[r.Entity] = append(byEntity[r.Entity], r)
	}
	lk.Run()
	return lk, byEntity
}

// weightOnlyBurst re-observes ~1% of the E entities by duplicating a few
// of their existing records — records landing in bins that already exist,
// the only ingest that leaves both IDF epochs untouched, so the next Run
// takes the pair-level delta path. This is the streaming steady state:
// entities keep visiting the places they already visit.
func weightOnlyBurst(lk *Linker, byEntity map[EntityID][]Record, k int) {
	entities := lk.EntitiesE()
	n := len(entities) / 100
	if n < 1 {
		n = 1
	}
	for j := 0; j < n; j++ {
		id := entities[(j*100+k*7)%len(entities)]
		recs := byEntity[id]
		for r := 0; r < 4 && r < len(recs); r++ {
			lk.AddE(recs[(k*5+r)%len(recs)])
		}
	}
}

// BenchmarkRelinkIncrementalDirtyBurst measures a full Run (delta rescore
// + matching + thresholding) after a ~1% weight-only dirty burst — the
// steady-state relink cost of a streaming service.
func BenchmarkRelinkIncrementalDirtyBurst(b *testing.B) {
	lk, byEntity := relinkFixture(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		weightOnlyBurst(lk, byEntity, i)
		b.StartTimer()
		res := lk.Run()
		if res.Stats.EdgeStore.FullRescore {
			b.Fatal("burst unexpectedly forced a full rescore; the benchmark must measure the delta path")
		}
	}
}

// BenchmarkRelinkFullRescore measures the path the edge store replaced:
// the identical burst relinked by rescanning every candidate pair (the
// store's cache is invalidated before each Run, exactly what every Run
// paid before the edge store existed).
func BenchmarkRelinkFullRescore(b *testing.B) {
	lk, byEntity := relinkFixture(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		weightOnlyBurst(lk, byEntity, i)
		lk.edges.built = false // invalidate: force the pre-edge-store rescan
		b.StartTimer()
		res := lk.Run()
		if !res.Stats.EdgeStore.FullRescore {
			b.Fatal("full-rescore benchmark took the delta path")
		}
	}
}

// TestRelinkIncrementalSpeedupOverFullRescore is the acceptance gate: on
// the standard workload, relinking after a ~1% weight-only dirty burst
// via the edge store's pair-level delta must be at least 5x faster than
// the full candidate rescan it replaced (in practice the gap tracks the
// dirty fraction — one to two orders of magnitude; 5x leaves headroom for
// noisy CI machines). Every measured pair of runs is also checked for
// bit-identical output, so the gate cannot pass by skipping work.
func TestRelinkIncrementalSpeedupOverFullRescore(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test; skipped in -short")
	}
	lk, byEntity := relinkFixture(t, 64)
	const reps = 7
	var incr, full []time.Duration
	for k := 0; k < reps; k++ {
		weightOnlyBurst(lk, byEntity, k)
		start := time.Now()
		res := lk.Run()
		incr = append(incr, time.Since(start))
		es := res.Stats.EdgeStore
		if es.FullRescore || es.Retained == 0 {
			t.Fatalf("rep %d did not take the delta path: %+v", k, es)
		}

		lk.edges.built = false
		start = time.Now()
		resFull := lk.Run()
		full = append(full, time.Since(start))
		if !resFull.Stats.EdgeStore.FullRescore {
			t.Fatalf("rep %d: forced rescan took the delta path", k)
		}
		if !slices.Equal(res.Links, resFull.Links) || !slices.Equal(res.Matched, resFull.Matched) {
			t.Fatalf("rep %d: delta relink output differs from full rescore", k)
		}
	}
	med := func(ds []time.Duration) time.Duration {
		s := slices.Clone(ds)
		slices.Sort(s)
		return s[len(s)/2]
	}
	mi, mf := med(incr), med(full)
	speedup := float64(mf) / float64(mi)
	t.Logf("median incremental relink %v, median full rescore %v: %.1fx", mi, mf, speedup)
	if speedup < 5 {
		t.Fatalf("incremental relink only %.1fx faster than full rescore (median %v vs %v); gate requires >= 5x",
			speedup, mi, mf)
	}
}
