package slim

import (
	"math/rand"
	"testing"
)

// TestLinkRegionRecords exercises the Sec. 2.1 extension end to end: one
// service reports coarse region records (e.g. cell-tower accuracy) while
// the other reports GPS points. SLIM must still link the true pairs.
func TestLinkRegionRecords(t *testing.T) {
	ground := GenerateCab(CabOptions{NumTaxis: 24, Days: 2, MeanRecordIntervalSec: 420, Seed: 51})
	w := SampleWorkload(&ground, SampleOptions{
		IntersectionRatio: 0.5,
		InclusionProbE:    0.5,
		InclusionProbI:    0.5,
		Seed:              52,
	})
	// Degrade the I side to region records with a 1-3 km accuracy radius.
	r := rand.New(rand.NewSource(53))
	for i := range w.I.Records {
		w.I.Records[i].RadiusKm = 1 + 2*r.Float64()
	}

	res, err := LinkDatasets(w.E, w.I, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	m := Evaluate(res.Links, w.Truth)
	if m.F1 < 0.6 {
		t.Errorf("region-record linkage F1 = %.3f (P=%.3f R=%.3f), want >= 0.6",
			m.F1, m.Precision, m.Recall)
	}

	// Region records must not blow up the work counters or crash LSH.
	cfg := Defaults()
	cfg.LSH = &LSHConfig{Threshold: 0.2, StepWindows: 48, SpatialLevel: 12, NumBuckets: 1 << 14}
	resLSH, err := LinkDatasets(w.E, w.I, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if resLSH.Stats.CandidatePairs > res.Stats.CandidatePairs {
		t.Error("LSH should not increase candidates for region records")
	}
}

// TestRegionRecordsDegradeGracefully checks that growing location
// uncertainty degrades linkage quality smoothly rather than collapsing —
// the behavior a privacy advisor would rely on.
func TestRegionRecordsDegradeGracefully(t *testing.T) {
	ground := GenerateCab(CabOptions{NumTaxis: 20, Days: 2, MeanRecordIntervalSec: 420, Seed: 54})
	var prevF1 float64 = 1.1
	worsened := 0
	for _, radius := range []float64{0, 8} {
		w := SampleWorkload(&ground, SampleOptions{
			IntersectionRatio: 0.5, InclusionProbE: 0.6, InclusionProbI: 0.6, Seed: 55,
		})
		for i := range w.I.Records {
			w.I.Records[i].RadiusKm = radius
		}
		res, err := LinkDatasets(w.E, w.I, Defaults())
		if err != nil {
			t.Fatal(err)
		}
		f1 := Evaluate(res.Links, w.Truth).F1
		if f1 > prevF1+0.15 {
			t.Errorf("F1 rose sharply with radius %g: %.3f -> %.3f", radius, prevF1, f1)
		}
		if f1 < prevF1 {
			worsened++
		}
		prevF1 = f1
	}
	_ = worsened // larger radii may or may not hurt at this scale; the
	// guarantee under test is "no crash, no sharp nonsense jumps".
}
