// Example slimd-client drives a running slimd service end to end: it
// generates the standard synthetic Cab workload, streams both anonymized
// datasets into the service in batches, triggers a linkage run, pages the
// links back out, and grades them against the ground truth it kept.
//
// Start the service first, then run the client:
//
//	go run ./cmd/slimd -addr :8080 &
//	go run ./examples/slimd-client -addr http://localhost:8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"strings"

	"slim"
)

type wireRecord struct {
	Entity string  `json:"entity"`
	Lat    float64 `json:"lat"`
	Lng    float64 `json:"lng"`
	Unix   int64   `json:"unix"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "slimd base URL")
	taxis := flag.Int("taxis", 24, "synthetic taxis in the ground trace")
	flag.Parse()

	ground := slim.GenerateCab(slim.CabOptions{
		NumTaxis: *taxis, Days: 2, MeanRecordIntervalSec: 360, Seed: 99,
	})
	w := slim.SampleWorkload(&ground, slim.SampleOptions{
		IntersectionRatio: 0.5, InclusionProbE: 0.5, InclusionProbI: 0.5, Seed: 100,
	})
	fmt.Printf("streaming %d + %d records into %s\n", w.E.Len(), w.I.Len(), *addr)

	ingest(*addr, "e", w.E.Records)
	ingest(*addr, "i", w.I.Records)

	var run struct {
		Links     int     `json:"links"`
		Matched   int     `json:"matched"`
		Threshold float64 `json:"threshold"`
		ElapsedMs float64 `json:"elapsed_ms"`
	}
	post(*addr+"/v1/link", nil, &run)
	fmt.Printf("linked: %d links (of %d matched) at threshold %.4g in %.1fms\n",
		run.Links, run.Matched, run.Threshold, run.ElapsedMs)

	var page struct {
		Total int `json:"total"`
		Links []struct {
			U     string  `json:"u"`
			V     string  `json:"v"`
			Score float64 `json:"score"`
		} `json:"links"`
	}
	get(*addr + "/v1/links")(&page)
	var links []slim.Link
	for _, l := range page.Links {
		links = append(links, slim.Link{U: slim.EntityID(l.U), V: slim.EntityID(l.V), Score: l.Score})
	}
	m := slim.Evaluate(links, w.Truth)
	fmt.Printf("graded against ground truth: precision %.3f, recall %.3f, F1 %.3f\n",
		m.Precision, m.Recall, m.F1)
	for i, l := range page.Links {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(page.Links)-5)
			break
		}
		fmt.Printf("  %s <-> %s  %.4f\n", l.U, l.V, l.Score)
	}

	// The service maintains its scored edges and LSH candidates as state:
	// show the incremental blocks after the bulk load, then re-observe a
	// handful of existing records (a ~1% weight-only burst) and relink —
	// the second set of stats makes the savings visible: almost every pair
	// retained, only the dirty entities' pairs rescored.
	printIncrementalStats(*addr, "after bulk load")
	burst := w.E.Records[:min(100, len(w.E.Records))]
	ingest(*addr, "e", burst)
	post(*addr+"/v1/link", nil, &run)
	fmt.Printf("relinked after re-observing %d records in %.1fms\n", len(burst), run.ElapsedMs)
	printIncrementalStats(*addr, "after incremental burst")

	// Every published link is fully explainable: GET /v1/explain joins the
	// score decomposition, the LSH candidate lineage, the retained-edge
	// lineage, and the flight-recorder entry of the run that produced it.
	if len(page.Links) > 0 {
		printExplain(*addr, page.Links[0].U, page.Links[0].V)
	}

	// The same numbers (and ~25 more families) are exported in Prometheus
	// text form for scraping; show the freshness and stage-timing excerpt.
	printMetricsExcerpt(*addr)
}

// printExplain fetches the provenance document for one pair and prints
// a digest: top contributing windows, candidate band collisions, edge
// lineage run stamps, and the producing run's decision and stage times.
func printExplain(addr, u, v string) {
	var ex struct {
		Version uint64 `json:"version"`
		Score   struct {
			Total   float64 `json:"total"`
			Norm    float64 `json:"norm"`
			Windows []struct {
				Window int64   `json:"window"`
				Sum    float64 `json:"sum"`
				Pairs  []struct {
					Contribution float64 `json:"contribution"`
				} `json:"pairs"`
			} `json:"windows"`
		} `json:"score"`
		Candidates *struct {
			BandCount  int32 `json:"band_count"`
			Collisions []struct {
				Band int `json:"band"`
			} `json:"collisions"`
		} `json:"candidates"`
		Edge struct {
			Score            float64 `json:"score"`
			RescoredSeq      uint64  `json:"rescored_seq"`
			RetainedSinceSeq uint64  `json:"retained_since_seq"`
		} `json:"edge"`
		Run *struct {
			Trigger      string  `json:"trigger"`
			ShortCircuit bool    `json:"short_circuit"`
			FullRescore  bool    `json:"full_rescore"`
			DurationMs   float64 `json:"duration_ms"`
			Rescored     int64   `json:"rescored"`
			Retained     int64   `json:"retained"`
		} `json:"run"`
	}
	get(fmt.Sprintf("%s/v1/explain?e=%s&i=%s", addr, url.QueryEscape(u), url.QueryEscape(v)))(&ex)
	fmt.Printf("explaining link %s <-> %s (GET /v1/explain):\n", u, v)
	fmt.Printf("  score %.4f over %d common windows (norm %.4g)\n",
		ex.Score.Total, len(ex.Score.Windows), ex.Score.Norm)
	for i, wnd := range ex.Score.Windows {
		if i == 3 {
			fmt.Printf("    ... and %d more windows\n", len(ex.Score.Windows)-3)
			break
		}
		fmt.Printf("    window %d: %d cell pairs contribute %.4g\n", wnd.Window, len(wnd.Pairs), wnd.Sum)
	}
	if c := ex.Candidates; c != nil {
		fmt.Printf("  candidates: surfaced by %d LSH band collisions\n", c.BandCount)
	}
	fmt.Printf("  edge: score %.4f last rescored by run %d, retained since run %d\n",
		ex.Edge.Score, ex.Edge.RescoredSeq, ex.Edge.RetainedSinceSeq)
	if r := ex.Run; r != nil {
		fmt.Printf("  producing run: trigger=%s full=%v short_circuit=%v rescored=%d retained=%d in %.1fms\n",
			r.Trigger, r.FullRescore, r.ShortCircuit, r.Rescored, r.Retained, r.DurationMs)
	}
}

// printMetricsExcerpt scrapes GET /metrics and prints the observability
// headline: end-to-end freshness (ingest -> link-visible latency and the
// current staleness watermark) plus the per-stage relink breakdown.
func printMetricsExcerpt(addr string) {
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		fatal(fmt.Errorf("GET %s/metrics: %s", addr, resp.Status))
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		fatal(err)
	}
	fmt.Println("metrics excerpt (GET /metrics):")
	keep := []string{
		"slim_ingest_to_visible_seconds_sum",
		"slim_ingest_to_visible_seconds_count",
		"slim_link_staleness_seconds",
		"slim_relink_seconds_sum",
		"slim_relink_seconds_count",
		"slim_relink_stage_seconds_sum",
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		for _, prefix := range keep {
			if strings.HasPrefix(line, prefix) {
				fmt.Println("  " + line)
				break
			}
		}
	}
}

// printIncrementalStats fetches /v1/stats and prints the edge-store and
// candidate-index blocks (the incremental-relink observability surface).
func printIncrementalStats(addr, when string) {
	var stats struct {
		DirtyShardsLastRun int    `json:"dirty_shards_last_run"`
		RunsShortCircuited uint64 `json:"runs_short_circuited"`
		EdgeStore          *struct {
			Pairs           int64   `json:"pairs"`
			Epoch           uint64  `json:"epoch"`
			RetainedLast    int64   `json:"retained_last"`
			RescoredLast    int64   `json:"rescored_last"`
			DroppedLast     int64   `json:"dropped_last"`
			FullRescoreLast bool    `json:"full_rescore_last"`
			LastUpdateMs    float64 `json:"last_update_ms"`
		} `json:"edge_store"`
		CandidateIndex *struct {
			Candidates        int64   `json:"candidates"`
			SignaturesE       int     `json:"signatures_e"`
			SignaturesI       int     `json:"signatures_i"`
			Epoch             uint64  `json:"epoch"`
			DirtyEntitiesLast int     `json:"dirty_entities_last"`
			LastRebuild       bool    `json:"last_rebuild"`
			LastUpdateMs      float64 `json:"last_update_ms"`
		} `json:"candidate_index"`
	}
	get(addr + "/v1/stats")(&stats)
	fmt.Printf("%s (dirty shards last run: %d, short-circuited runs: %d)\n",
		when, stats.DirtyShardsLastRun, stats.RunsShortCircuited)
	if es := stats.EdgeStore; es != nil {
		fmt.Printf("  edge_store: %d pairs held, last relink retained %d / rescored %d / dropped %d (full=%v) in %.2fms\n",
			es.Pairs, es.RetainedLast, es.RescoredLast, es.DroppedLast, es.FullRescoreLast, es.LastUpdateMs)
	} else {
		fmt.Println("  edge_store: (no relink yet)")
	}
	if ci := stats.CandidateIndex; ci != nil {
		fmt.Printf("  candidate_index: %d candidates over %d+%d signatures, last update re-signed %d entities (rebuild=%v) in %.2fms\n",
			ci.Candidates, ci.SignaturesE, ci.SignaturesI, ci.DirtyEntitiesLast, ci.LastRebuild, ci.LastUpdateMs)
	} else {
		fmt.Println("  candidate_index: (lsh disabled; start slimd with -lsh to enable the filter)")
	}
}

// ingest streams one dataset in batches of 500 records.
func ingest(addr, ds string, recs []slim.Record) {
	const batch = 500
	for i := 0; i < len(recs); i += batch {
		hi := min(i+batch, len(recs))
		wire := make([]wireRecord, 0, hi-i)
		for _, r := range recs[i:hi] {
			wire = append(wire, wireRecord{
				Entity: string(r.Entity), Lat: r.LatLng.Lat, Lng: r.LatLng.Lng, Unix: r.Unix,
			})
		}
		post(addr+"/v1/datasets/"+ds+"/records", map[string]any{"records": wire}, nil)
	}
}

func post(url string, body, out any) {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var msg bytes.Buffer
		msg.ReadFrom(resp.Body)
		fatal(fmt.Errorf("POST %s: %s: %s", url, resp.Status, msg.String()))
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			fatal(err)
		}
	}
}

func get(url string) func(any) {
	return func(out any) {
		resp, err := http.Get(url)
		if err != nil {
			fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 300 {
			fatal(fmt.Errorf("GET %s: %s", url, resp.Status))
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slimd-client:", err)
	os.Exit(1)
}
