// Urban planning: build a unified mobility dataset from two partial
// sources — the data-integration application motivating the paper's
// introduction (e.g. merging wifi-positioning data with app check-ins to
// avoid double-counting population densities).
//
// Two services observe overlapping user populations of one metro area.
// Counting "unique people per district" from the naive union overcounts:
// every cross-service user is counted twice. Linking with SLIM first
// deduplicates the union and fixes the density estimates.
//
// Run with:
//
//	go run ./examples/urban-planning
package main

import (
	"fmt"
	"log"
	"sort"

	"slim"
)

func main() {
	ground := slim.GenerateCab(slim.CabOptions{
		NumTaxis:              60,
		Days:                  2,
		MeanRecordIntervalSec: 360,
		Seed:                  21,
	})
	w := slim.SampleWorkload(&ground, slim.SampleOptions{
		IntersectionRatio: 0.6,
		InclusionProbE:    0.6,
		InclusionProbI:    0.6,
		Seed:              22,
	})

	res, err := slim.LinkDatasets(w.E, w.I, slim.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	m := slim.Evaluate(res.Links, w.Truth)

	// Merge: every linked pair becomes ONE unified entity; unlinked
	// entities carry over as-is.
	aliasOfI := make(map[slim.EntityID]slim.EntityID, len(res.Links))
	for _, l := range res.Links {
		aliasOfI[l.V] = l.U
	}
	var unified slim.Dataset
	unified.Name = "unified"
	unified.Records = append(unified.Records, w.E.Records...)
	for _, r := range w.I.Records {
		if alias, ok := aliasOfI[r.Entity]; ok {
			r.Entity = alias
		}
		unified.Records = append(unified.Records, r)
	}

	naiveCount := len(w.E.Entities()) + len(w.I.Entities())
	trueCount := naiveCount - len(w.Truth)
	fmt.Printf("service E entities:        %d\n", len(w.E.Entities()))
	fmt.Printf("service I entities:        %d\n", len(w.I.Entities()))
	fmt.Printf("naive union (overcounted): %d\n", naiveCount)
	fmt.Printf("ground-truth population:   %d\n", trueCount)
	fmt.Printf("after SLIM linkage:        %d  (linked %d pairs, F1=%.2f)\n\n",
		len(unified.Entities()), len(res.Links), m.F1)

	// District densities: unique entities per coarse area, naive vs
	// deduplicated. Districts are a simple lat/lng grid over the city.
	fmt.Println("district  naive-unique  deduped-unique")
	fmt.Println("--------  ------------  --------------")
	naive := districtCounts(&w.E, &w.I, nil)
	dedup := districtCounts(&w.E, &w.I, aliasOfI)
	keys := make([]string, 0, len(naive))
	for k := range naive {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	shown := 0
	for _, k := range keys {
		if naive[k] < 10 {
			continue // skip empty fringe districts
		}
		fmt.Printf("%-8s  %12d  %14d\n", k, naive[k], dedup[k])
		shown++
		if shown == 10 {
			break
		}
	}
	fmt.Println("\nreading: naive per-district 'unique users' double-count every")
	fmt.Println("cross-service person; the linked ids correct the estimate.")
}

// districtCounts counts distinct entities per ~2km grid district across
// both services, optionally unifying I ids through the alias map.
func districtCounts(e, i *slim.Dataset, aliasOfI map[slim.EntityID]slim.EntityID) map[string]int {
	seen := make(map[string]map[slim.EntityID]bool)
	add := func(r slim.Record, alias map[slim.EntityID]slim.EntityID) {
		id := r.Entity
		if alias != nil {
			if a, ok := alias[id]; ok {
				id = a
			}
		}
		d := fmt.Sprintf("%d/%d", int(r.LatLng.Lat*50), int(-r.LatLng.Lng*50))
		if seen[d] == nil {
			seen[d] = make(map[slim.EntityID]bool)
		}
		seen[d][id] = true
	}
	for _, r := range e.Records {
		add(r, nil)
	}
	for _, r := range i.Records {
		add(r, aliasOfI)
	}
	out := make(map[string]int, len(seen))
	for d, ids := range seen {
		out[d] = len(ids)
	}
	return out
}
