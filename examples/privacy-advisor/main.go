// Privacy advisor: quantify how linkable an "anonymized" mobility dataset
// really is — the privacy application motivating the paper's introduction.
//
// A data owner is about to release an anonymized check-in dataset. An
// adversary holds records of the same population from another service
// (here: a second sample of the same synthetic ground stream). This tool
// measures what fraction of released users the adversary can re-identify
// with SLIM, under increasingly aggressive record thinning — showing how
// much suppression it takes before spatio-temporal linkage stops working.
//
// Run with:
//
//	go run ./examples/privacy-advisor
package main

import (
	"fmt"
	"log"

	"slim"
)

func main() {
	ground := slim.GenerateSM(slim.SMOptions{
		NumUsers:   800,
		Days:       10,
		AvgRecords: 40,
		Seed:       11,
	})
	fmt.Println("privacy advisor: simulated release of an anonymized check-in dataset")
	fmt.Println("adversary: records of the same population from another service")
	fmt.Println()
	fmt.Println("release-thinning  kept-records/user  re-identified  precision  recall")
	fmt.Println("----------------  -----------------  -------------  ---------  ------")

	for _, keep := range []float64{0.9, 0.6, 0.4, 0.2, 0.1} {
		// The adversary's auxiliary dataset is stable; the release side is
		// thinned to `keep`.
		w := slim.SampleWorkload(&ground, slim.SampleOptions{
			IntersectionRatio: 0.8, // most released users also use the other service
			InclusionProbE:    keep,
			InclusionProbI:    0.7,
			Seed:              12,
		})
		cfg := slim.Defaults()
		cfg.WindowMinutes = 30 // sparse check-ins: wider windows
		res, err := slim.LinkDatasets(w.E, w.I, cfg)
		if err != nil {
			log.Fatal(err)
		}
		m := slim.Evaluate(res.Links, w.Truth)
		avg := 0.0
		if n := len(w.E.Entities()); n > 0 {
			avg = float64(w.E.Len()) / float64(n)
		}
		fmt.Printf("%15.0f%%  %17.1f  %10d/%-3d  %9.3f  %6.3f\n",
			keep*100, avg, m.TP, len(w.Truth), m.Precision, m.Recall)
	}

	fmt.Println()
	fmt.Println("reading: 'recall' is the fraction of released users an adversary")
	fmt.Println("re-identifies. If it is high, anonymizing ids was not enough —")
	fmt.Println("the spatio-temporal trail itself is the identifier (cf. paper §1).")
}
