// Example ingest-bench drives slimd's binary ingest plane
// (POST /v1/ingest/batch, application/x-slim-frame) as hard as it can:
// it pre-encodes a synthetic burst into CRC-framed wire batches, streams
// them with a Retry-After-honoring backoff loop (the server sheds with
// 429 when its queue-depth or latency budget is exceeded), and prints
// the achieved throughput plus the service's ingest stats block.
//
// Start the service first, then run the bench:
//
//	go run ./cmd/slimd -addr :8080 &
//	go run ./examples/ingest-bench -addr http://localhost:8080 -records 1000000
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"time"

	"slim"
	"slim/internal/ingest"
	"slim/internal/storage"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "slimd base URL")
	records := flag.Int("records", 1_000_000, "total records in the burst")
	batch := flag.Int("batch", 4096, "records per wire batch (one frame each)")
	frames := flag.Int("frames", 16, "wire batches per HTTP request")
	entities := flag.Int("entities", 512, "distinct synthetic entities")
	flag.Parse()

	// Pre-encode the whole burst so the loop below measures the service,
	// not the client's encoder. Each request body is a run of CRC-framed
	// wire batches — exactly what the server appends to its WAL.
	fmt.Printf("encoding %d records (%d per batch, %d batches per request)\n", *records, *batch, *frames)
	var bodies [][]byte
	var body []byte
	recs := make([]slim.Record, 0, *batch)
	inBody := 0
	flush := func() {
		if len(recs) == 0 {
			return
		}
		body = storage.AppendFrame(body, storage.AppendWireBatch(nil, storage.TagE, recs))
		recs = recs[:0]
		if inBody++; inBody == *frames {
			bodies, body, inBody = append(bodies, body), nil, 0
		}
	}
	for i := 0; i < *records; i++ {
		e := slim.EntityID(fmt.Sprintf("cab-%04d", i%*entities))
		recs = append(recs, slim.NewRecord(e,
			37.7+float64(i%1000)*1e-4, -122.4+float64(i%997)*1e-4,
			int64(1_600_000_000+i)))
		if len(recs) == *batch {
			flush()
		}
	}
	flush()
	if body != nil {
		bodies = append(bodies, body)
	}

	fmt.Printf("streaming %d requests to %s/v1/ingest/batch\n", len(bodies), *addr)
	client := &http.Client{Timeout: 30 * time.Second}
	var sheds int
	start := time.Now()
	for _, b := range bodies {
		// Retry loop: a 429 is a clean rejection (nothing from the request
		// was applied), so resend the identical body after Retry-After.
		for {
			resp, err := client.Post(*addr+"/v1/ingest/batch", ingest.ContentType, bytes.NewReader(b))
			if err != nil {
				fatal(err)
			}
			if resp.StatusCode == http.StatusTooManyRequests {
				sheds++
				wait := time.Second
				if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
					wait = time.Duration(s) * time.Second
				}
				resp.Body.Close()
				time.Sleep(wait)
				continue
			}
			if resp.StatusCode != http.StatusAccepted {
				var msg bytes.Buffer
				msg.ReadFrom(resp.Body)
				resp.Body.Close()
				fatal(fmt.Errorf("ingest: %s: %s", resp.Status, msg.String()))
			}
			resp.Body.Close()
			break
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("ingested %d records in %v (%.0f records/s, %d requests shed and retried)\n",
		*records, elapsed.Round(time.Millisecond), float64(*records)/elapsed.Seconds(), sheds)

	// The service-side view of the same burst.
	var stats struct {
		Ingest *struct {
			QueueDepth      int     `json:"queue_depth"`
			ShedAfterMs     float64 `json:"shed_after_ms"`
			InflightRecords int     `json:"inflight_records"`
			PendingRecords  int     `json:"pending_records"`
			OldestWaitMs    float64 `json:"oldest_wait_ms"`
			AcceptedBatches uint64  `json:"accepted_batches"`
			AcceptedRecords uint64  `json:"accepted_records"`
			ShedRequests    uint64  `json:"shed_requests"`
			ShedRecords     uint64  `json:"shed_records"`
			ShedQueueDepth  uint64  `json:"shed_queue_depth"`
			ShedLatency     uint64  `json:"shed_latency"`
		} `json:"ingest"`
	}
	resp, err := client.Get(*addr + "/v1/stats")
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		fatal(err)
	}
	if ist := stats.Ingest; ist != nil {
		fmt.Printf("service ingest stats:\n")
		fmt.Printf("  budgets: queue depth %d records, shed after %.0fms\n", ist.QueueDepth, ist.ShedAfterMs)
		fmt.Printf("  queue:   %d inflight, %d pending relink, oldest wait %.2fms\n",
			ist.InflightRecords, ist.PendingRecords, ist.OldestWaitMs)
		fmt.Printf("  accepted: %d batches / %d records\n", ist.AcceptedBatches, ist.AcceptedRecords)
		fmt.Printf("  shed:     %d requests / %d records (%d on queue depth, %d on latency)\n",
			ist.ShedRequests, ist.ShedRecords, ist.ShedQueueDepth, ist.ShedLatency)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ingest-bench:", err)
	os.Exit(1)
}
