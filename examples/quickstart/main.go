// Quickstart: generate a small synthetic taxi workload, link the two
// anonymized sides with SLIM's defaults, and evaluate against ground truth.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"slim"
)

func main() {
	// 1. A ground dataset: 40 taxis driving San Francisco for 2 days.
	ground := slim.GenerateCab(slim.CabOptions{
		NumTaxis:              40,
		Days:                  2,
		MeanRecordIntervalSec: 300,
		Seed:                  1,
	})
	fmt.Printf("ground trace: %d records from %d taxis\n",
		ground.Len(), len(ground.Entities()))

	// 2. Simulate two location-based services observing those taxis:
	// half the entities appear in both services, each service keeps each
	// record with probability 0.5, and ids are anonymized per service.
	w := slim.SampleWorkload(&ground, slim.SampleOptions{
		IntersectionRatio: 0.5,
		InclusionProbE:    0.5,
		InclusionProbI:    0.5,
		Seed:              2,
	})
	fmt.Printf("service E: %d records / %d entities\n", w.E.Len(), len(w.E.Entities()))
	fmt.Printf("service I: %d records / %d entities\n", w.I.Len(), len(w.I.Entities()))
	fmt.Printf("true cross-service pairs: %d\n\n", len(w.Truth))

	// 3. Link with the paper's defaults: 15-minute windows, spatial level
	// 12, alibi-aware MNN similarity, greedy matching, GMM stop threshold.
	res, err := slim.LinkDatasets(w.E, w.I, slim.Defaults())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("linked %d pairs (threshold %.4g via %s) in %v\n",
		len(res.Links), res.Threshold, res.ThresholdMethod, res.Elapsed)
	for i, l := range res.Links {
		if i == 10 {
			fmt.Printf("  ... and %d more\n", len(res.Links)-10)
			break
		}
		mark := " "
		if w.Truth[l.U] == l.V {
			mark = "*" // a correct link (ground truth, normally unknown!)
		}
		fmt.Printf("  %s %s <-> %s  score=%.1f\n", mark, l.U, l.V, l.Score)
	}

	// 4. Because this workload is synthetic we can grade the result.
	m := slim.Evaluate(res.Links, w.Truth)
	fmt.Printf("\nprecision=%.3f recall=%.3f F1=%.3f\n", m.Precision, m.Recall, m.F1)
}
