// LSH tuning: explore the scalability/quality trade-off of SLIM's
// locality-sensitive-hashing filter (Sec. 4 of the paper) on one workload.
//
// The filter replaces the quadratic candidate enumeration with banded
// hashing of dominating-cell signatures. This example sweeps the signature
// threshold and spatial level, reporting candidate reduction, speed-up in
// record comparisons, and the F1 cost relative to brute force — the
// decision table you would consult before deploying SLIM on a large feed.
//
// Run with:
//
//	go run ./examples/lsh-tuning
package main

import (
	"fmt"
	"log"

	"slim"
)

func main() {
	ground := slim.GenerateCab(slim.CabOptions{
		NumTaxis:              56,
		Days:                  3,
		MeanRecordIntervalSec: 360,
		Seed:                  31,
	})
	w := slim.SampleWorkload(&ground, slim.SampleOptions{
		IntersectionRatio: 0.5,
		InclusionProbE:    0.5,
		InclusionProbI:    0.5,
		Seed:              32,
	})

	// Brute-force baseline.
	base, err := slim.LinkDatasets(w.E, w.I, slim.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	baseF1 := slim.Evaluate(base.Links, w.Truth).F1
	fmt.Printf("brute force: %d candidate pairs, %d record comparisons, F1=%.3f\n\n",
		base.Stats.CandidatePairs, base.Stats.RecordComparisons, baseF1)

	fmt.Println("sig-level  threshold  candidates  speed-up  relative-F1")
	fmt.Println("---------  ---------  ----------  --------  -----------")
	for _, level := range []int{8, 10, 12, 14} {
		for _, t := range []float64{0.2, 0.4, 0.6} {
			cfg := slim.Defaults()
			cfg.LSH = &slim.LSHConfig{
				Threshold:    t,
				StepWindows:  48,
				SpatialLevel: level,
				NumBuckets:   1 << 14,
			}
			res, err := slim.LinkDatasets(w.E, w.I, cfg)
			if err != nil {
				log.Fatal(err)
			}
			f1 := slim.Evaluate(res.Links, w.Truth).F1
			rel := 0.0
			if baseF1 > 0 {
				rel = f1 / baseF1
			}
			speedup := 0.0
			if res.Stats.RecordComparisons > 0 {
				speedup = float64(base.Stats.RecordComparisons) / float64(res.Stats.RecordComparisons)
			}
			fmt.Printf("%9d  %9.1f  %10d  %7.1fx  %11.3f\n",
				level, t, res.Stats.CandidatePairs, speedup, rel)
		}
	}

	fmt.Println("\nreading: pick the row with the largest speed-up whose relative F1")
	fmt.Println("you can afford; coarse signature levels do not filter at all on a")
	fmt.Println("dense single-city dataset (everyone shares the dominating cells),")
	fmt.Println("exactly as the paper observes on the Cab trace.")

	// On a streaming feed the filter is maintained incrementally: the
	// candidate index re-signs only the entities an ingest burst touched
	// (an epoch rebuild happens only when the time range outgrows the
	// signature grid). Stream a one-entity burst and inspect the index.
	cfg := slim.Defaults()
	cfg.LSH = &slim.LSHConfig{Threshold: 0.4, StepWindows: 48, SpatialLevel: 12, NumBuckets: 1 << 14}
	lk, err := slim.NewLinker(w.E, w.I, cfg)
	if err != nil {
		log.Fatal(err)
	}
	lk.Run()
	ix := lk.CandidateIndexStats()
	fmt.Printf("\ncandidate index after the initial build (epoch %d):\n", ix.Epoch)
	fmt.Printf("  signatures %d+%d, %d non-empty buckets (occupancy %.2f), %d candidate pairs\n",
		ix.SignaturesE, ix.SignaturesI, ix.Buckets, ix.Occupancy, ix.Candidates)

	var burst []slim.Record
	target := w.E.Records[0].Entity
	for _, r := range w.E.Records {
		if r.Entity == target && len(burst) < 8 {
			r.Unix += 60 // re-observe the same places a minute later
			burst = append(burst, r)
		}
	}
	lk.AddE(burst...)
	lk.Run()
	ix = lk.CandidateIndexStats()
	fmt.Printf("after streaming %d records of one entity (epoch %d, rebuild=%v):\n",
		len(burst), ix.Epoch, ix.LastRebuild)
	fmt.Printf("  %d dirty signature(s) recomputed in %v; %d candidate pairs\n",
		ix.LastDirty, ix.LastUpdate, ix.Candidates)
}
