package slim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Adversarial-input tests: the pipeline must stay finite, deterministic
// and crash-free on degenerate data a real feed can produce.

func TestLinkAllRecordsSameTimestamp(t *testing.T) {
	var e, i Dataset
	for k := 0; k < 10; k++ {
		id := EntityID(string(rune('a' + k)))
		for n := 0; n < 8; n++ {
			e.Records = append(e.Records, NewRecord("e"+id, 37+float64(k)*0.3, -122, 1000))
			i.Records = append(i.Records, NewRecord("i"+id, 37+float64(k)*0.3, -122, 1000))
		}
	}
	res, err := LinkDatasets(e, i, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Links {
		if math.IsNaN(l.Score) || math.IsInf(l.Score, 0) {
			t.Fatalf("degenerate score %v", l)
		}
	}
}

func TestLinkDuplicateRecords(t *testing.T) {
	var e, i Dataset
	rec := NewRecord("u", 37.77, -122.42, 1000)
	for n := 0; n < 50; n++ { // the same record 50 times
		e.Records = append(e.Records, rec)
	}
	recI := rec
	recI.Entity = "v"
	for n := 0; n < 50; n++ {
		i.Records = append(i.Records, recI)
	}
	// A second pair so IDF is not all-zero.
	for n := 0; n < 10; n++ {
		e.Records = append(e.Records, NewRecord("u2", 48.85, 2.35, int64(1000+n*900)))
		i.Records = append(i.Records, NewRecord("v2", 48.85, 2.35, int64(1000+n*900)))
	}
	res, err := LinkDatasets(e, i, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range res.Matched {
		if l.U == "u" && l.V == "v" {
			found = true
			if math.IsNaN(l.Score) || math.IsInf(l.Score, 0) {
				t.Fatalf("degenerate score for duplicated records: %g", l.Score)
			}
		}
	}
	if !found {
		t.Error("identical duplicated records should still match")
	}
}

func TestLinkSingleEntityPerSide(t *testing.T) {
	var e, i Dataset
	for n := 0; n < 10; n++ {
		e.Records = append(e.Records, NewRecord("u", 37.77, -122.42, int64(n*900)))
		i.Records = append(i.Records, NewRecord("v", 37.77, -122.42, int64(n*900)))
	}
	res, err := LinkDatasets(e, i, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	// With |U|=1 the IDF of every bin is 0, so the score is 0 and no edge
	// forms — the formula's behavior, not a crash.
	if len(res.Matched) > 1 {
		t.Errorf("at most one match possible, got %d", len(res.Matched))
	}
}

func TestLinkNegativeAndHugeTimestamps(t *testing.T) {
	var e, i Dataset
	times := []int64{-1e9, -900, 0, 900, 1e10}
	for k := 0; k < 4; k++ {
		id := string(rune('a' + k))
		for _, ts := range times {
			e.Records = append(e.Records, NewRecord(EntityID("e"+id), 37+float64(k)*0.4, -122, ts))
			i.Records = append(i.Records, NewRecord(EntityID("i"+id), 37+float64(k)*0.4, -122, ts+30))
		}
		// pad over the MinRecords filter
		for n := 0; n < 3; n++ {
			e.Records = append(e.Records, NewRecord(EntityID("e"+id), 37+float64(k)*0.4, -122, int64(2000+n*900)))
			i.Records = append(i.Records, NewRecord(EntityID("i"+id), 37+float64(k)*0.4, -122, int64(2030+n*900)))
		}
	}
	res, err := LinkDatasets(e, i, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Matched {
		if math.IsNaN(l.Score) || math.IsInf(l.Score, 0) {
			t.Fatalf("degenerate score with extreme timestamps: %v", l)
		}
	}
}

func TestLinkPoleAndAntimeridianRecords(t *testing.T) {
	var e, i Dataset
	spots := []LatLng{
		{Lat: 89.99, Lng: 0},
		{Lat: -89.99, Lng: 100},
		{Lat: 0, Lng: 179.999},
		{Lat: 0, Lng: -179.999},
	}
	for k, s := range spots {
		id := string(rune('a' + k))
		for n := 0; n < 8; n++ {
			e.Records = append(e.Records, Record{Entity: EntityID("e" + id), LatLng: s, Unix: int64(n * 900)})
			i.Records = append(i.Records, Record{Entity: EntityID("i" + id), LatLng: s, Unix: int64(n*900 + 60)})
		}
	}
	res, err := LinkDatasets(e, i, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	m := 0
	for _, l := range res.Matched {
		if l.U[1:] == l.V[1:] {
			m++
		}
	}
	if m < 3 {
		t.Errorf("polar/antimeridian entities should still match: %d/4 (matched %v)", m, res.Matched)
	}
}

func TestLinkQuickNeverPanics(t *testing.T) {
	cfg := Defaults()
	cfg.Threshold = ThresholdOtsu // cheapest
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func(prefix string) Dataset {
			var d Dataset
			nEnt := 1 + r.Intn(5)
			for k := 0; k < nEnt; k++ {
				id := EntityID(prefix + string(rune('a'+k)))
				nRec := r.Intn(12)
				for n := 0; n < nRec; n++ {
					d.Records = append(d.Records, NewRecord(id,
						r.Float64()*180-90, r.Float64()*360-180,
						int64(r.Intn(86400))))
				}
			}
			return d
		}
		res, err := LinkDatasets(mk("e"), mk("i"), cfg)
		if err != nil {
			return false
		}
		for _, l := range res.Links {
			if math.IsNaN(l.Score) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestScoreMonotoneInSharedEvidence(t *testing.T) {
	// More co-occurring windows must not lower the score (with
	// normalization off so history size does not confound).
	cfg := Defaults()
	cfg.Ablation.DisableNorm = true
	build := func(shared int) float64 {
		var e, i Dataset
		for n := 0; n < 12; n++ {
			e.Records = append(e.Records, NewRecord("u", 37.77, -122.42, int64(n*900)))
		}
		for n := 0; n < shared; n++ {
			i.Records = append(i.Records, NewRecord("v", 37.77, -122.42, int64(n*900+30)))
		}
		for n := shared; n < 12; n++ { // keep v's record count constant
			i.Records = append(i.Records, NewRecord("v", 37.77, -122.42, int64((n+100)*900)))
		}
		// fillers for IDF
		for n := 0; n < 12; n++ {
			e.Records = append(e.Records, NewRecord("zf", 35.68, 139.65, int64(n*900)))
			i.Records = append(i.Records, NewRecord("zf", 35.68, 139.65, int64(n*900)))
		}
		lk, err := NewLinker(e, i, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return lk.Score("u", "v")
	}
	prev := -math.MaxFloat64
	for _, shared := range []int{2, 6, 12} {
		s := build(shared)
		if s < prev {
			t.Fatalf("score decreased with more shared evidence: %g -> %g", prev, s)
		}
		prev = s
	}
}
